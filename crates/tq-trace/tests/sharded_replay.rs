//! Sharded-replay determinism: for every tool, splitting a trace into
//! chunks, replaying them in parallel and merging the partial states must
//! reproduce the sequential profile *bit-exactly* — on seeded random
//! traces (the property net) and on full application captures (the
//! acceptance path). Plus the panic-proofing property: corrupt or
//! truncated streams are `Err`s, never panics.

use tq_gprof::{GprofOptions, GprofTool};
use tq_isa::prng::Rng;
use tq_isa::RoutineId;
use tq_quad::{QuadOptions, QuadTool};
use tq_tquad::{LibPolicy, TquadOptions, TquadTool};
use tq_trace::{Trace, TraceRecorder};
use tq_vm::{Event, ProgramInfo, RoutineMeta, Tool};

/// A program shape for the random traces: two main-image routines and two
/// library routines, so both stack-tracking variants get exercised.
fn synthetic_info() -> ProgramInfo {
    let mk = |id: u32, name: &str, main: bool, base: u64| RoutineMeta {
        id: RoutineId(id),
        name: name.into(),
        image: if main { "app" } else { "libc" }.into(),
        main_image: main,
        start: base,
        end: base + 0x100,
    };
    ProgramInfo {
        routines: vec![
            mk(0, "main", true, 0x10000),
            mk(1, "kernel_a", true, 0x11000),
            mk(2, "memcpy", false, 0x20000),
            mk(3, "malloc", false, 0x21000),
        ],
        stack_base: 0x3FFF_FF00,
        entry: 0x10000,
    }
}

/// Feed a seeded-random but structurally plausible event stream through
/// the recorder: calls and returns stay balanced around a real shadow
/// stack, reads/writes hit a mix of heap and stack addresses, and the
/// virtual clock only moves forward.
fn random_trace(seed: u64, n_events: usize) -> Trace {
    let info = synthetic_info();
    let mut rng = Rng::new(seed);
    let mut rec = TraceRecorder::new();
    rec.on_attach(&info);

    let mut icount = 0u64;
    // (routine, sp) call stack; main is always at the bottom.
    let mut stack: Vec<(RoutineId, u64)> = vec![(RoutineId(0), info.stack_base)];
    for _ in 0..n_events {
        icount += rng.u64_in(1, 9);
        let (rtn, sp) = *stack.last().unwrap();
        let ip = info.routines[rtn.idx()].start + 8 * rng.u64_in(0, 30);
        match rng.index(10) {
            // Call + enter a random routine (bounded depth).
            0 | 1 if stack.len() < 12 => {
                let callee = RoutineId(rng.index(4) as u32);
                rec.on_event(&Event::Call {
                    ip,
                    callee,
                    icount,
                    rtn,
                });
                icount += 1;
                let new_sp = sp - rng.u64_in(16, 64);
                stack.push((callee, new_sp));
                rec.on_event(&Event::RoutineEnter {
                    rtn: callee,
                    sp: new_sp,
                    icount,
                });
            }
            // Return to the caller (never pop main).
            2 if stack.len() > 1 => {
                stack.pop();
                let (back_rtn, _) = *stack.last().unwrap();
                rec.on_event(&Event::Ret {
                    ip,
                    return_to: info.routines[back_rtn.idx()].start + 16,
                    icount,
                    rtn,
                });
            }
            // Reads, occasionally prefetches, on heap or stack addresses.
            3 | 4 | 5 => {
                let ea = if rng.index(4) == 0 {
                    sp - rng.u64_in(0, 128)
                } else {
                    0x1000_0000 + rng.u64_in(0, 4096)
                };
                rec.on_event(&Event::MemRead {
                    ip,
                    ea,
                    size: 1 << rng.index(4),
                    sp,
                    is_prefetch: rng.index(8) == 0,
                    icount,
                    rtn,
                });
            }
            // Writes.
            _ => {
                let ea = if rng.index(4) == 0 {
                    sp - rng.u64_in(0, 128)
                } else {
                    0x1000_0000 + rng.u64_in(0, 4096)
                };
                rec.on_event(&Event::MemWrite {
                    ip,
                    ea,
                    size: 1 << rng.index(4),
                    sp,
                    icount,
                    rtn,
                });
            }
        }
    }
    rec.on_fini(icount + 1);
    rec.into_trace()
}

/// Assert all three tools produce identical profiles sharded vs
/// sequential, across lib/stack policy variants and several shard counts.
fn assert_all_tools_shard_exactly(trace: &Trace, shard_counts: &[usize], what: &str) {
    for lib_policy in [
        LibPolicy::AttributeToCaller,
        LibPolicy::Track,
        LibPolicy::Drop,
    ] {
        let opts = TquadOptions::default()
            .with_interval(777)
            .with_lib_policy(lib_policy);
        let mut seq = TquadTool::new(opts);
        trace.replay(&mut seq).expect("sequential replay");
        let seq = seq.into_profile();
        for &jobs in shard_counts {
            let mut sharded = TquadTool::new(opts);
            trace
                .replay_sharded(&mut sharded, jobs)
                .expect("sharded replay");
            assert_eq!(
                seq,
                sharded.into_profile(),
                "{what}: tquad {lib_policy:?} diverged at {jobs} shards"
            );
        }

        for include_stack in [true, false] {
            let qopts = QuadOptions {
                include_stack,
                lib_policy,
            };
            let mut seq = QuadTool::new(qopts);
            trace.replay(&mut seq).expect("sequential replay");
            let seq = seq.into_profile();
            for &jobs in shard_counts {
                let mut sharded = QuadTool::new(qopts);
                trace
                    .replay_sharded(&mut sharded, jobs)
                    .expect("sharded replay");
                assert_eq!(
                    seq,
                    sharded.into_profile(),
                    "{what}: quad {lib_policy:?}/stack={include_stack} \
                     diverged at {jobs} shards"
                );
            }
        }
    }

    for track_libs in [false, true] {
        let gopts = GprofOptions {
            sample_interval: 500,
            track_libs,
            ..Default::default()
        };
        let mut seq = GprofTool::new(gopts);
        trace.replay(&mut seq).expect("sequential replay");
        let seq = seq.into_profile();
        for &jobs in shard_counts {
            let mut sharded = GprofTool::new(gopts);
            trace
                .replay_sharded(&mut sharded, jobs)
                .expect("sharded replay");
            assert_eq!(
                seq,
                sharded.into_profile(),
                "{what}: gprof track_libs={track_libs} diverged at {jobs} shards"
            );
        }
    }
}

#[test]
fn random_traces_shard_exactly() {
    for seed in 0..6u64 {
        let trace = random_trace(0xC0FFEE ^ seed, 1_500);
        assert_all_tools_shard_exactly(&trace, &[2, 3, 4, 7], &format!("seed {seed}"));
    }
}

#[test]
fn coarsened_embedded_index_shards_exactly() {
    // A fine index embedded at capture time serves any smaller job count
    // by grouping adjacent chunks — same determinism contract.
    let trace = random_trace(0xBEEF, 2_000)
        .with_chunk_index(16)
        .expect("chunk index");
    assert_all_tools_shard_exactly(&trace, &[2, 5, 16], "coarsened index");
}

#[test]
fn split_merge_roundtrips_through_save_load() {
    // The sharded contract survives serialisation: a TQTRACE2 file loaded
    // back shards exactly like the in-memory trace it was saved from.
    let trace = random_trace(0xABCD, 1_000)
        .with_chunk_index(8)
        .expect("chunk index");
    let mut bytes = Vec::new();
    trace.save(&mut bytes).expect("save");
    let reloaded = Trace::load(&mut bytes.as_slice()).expect("reload");
    assert_eq!(trace, reloaded);
    assert_all_tools_shard_exactly(&reloaded, &[4, 8], "reloaded");
}

#[test]
fn wfs_capture_shards_exactly() {
    let app = tq_wfs::WfsApp::build(tq_wfs::WfsConfig::tiny());
    let mut vm = app.make_vm();
    let h = vm.attach_tool(Box::new(TraceRecorder::new()));
    vm.run(None).expect("wfs runs");
    let trace = vm.detach_tool::<TraceRecorder>(h).unwrap().into_trace();
    assert_all_tools_shard_exactly(&trace, &[4], "wfs tiny");
}

#[test]
fn imgproc_capture_shards_exactly() {
    let app = tq_imgproc::ImgApp::build(tq_imgproc::ImgConfig::tiny());
    let mut vm = app.make_vm();
    let h = vm.attach_tool(Box::new(TraceRecorder::new()));
    vm.run(None).expect("imgproc runs");
    let trace = vm.detach_tool::<TraceRecorder>(h).unwrap().into_trace();
    assert_all_tools_shard_exactly(&trace, &[4], "imgproc tiny");
}

#[test]
fn truncated_streams_error_instead_of_panicking() {
    let trace = random_trace(0x5EED, 800)
        .with_chunk_index(4)
        .expect("chunk index");
    let mut bytes = Vec::new();
    trace.save(&mut bytes).expect("save");
    let mut rng = Rng::new(0x7E57);
    // Every short prefix either fails to load or, if the header happens to
    // parse, fails (or succeeds benignly) downstream — but never panics.
    for _ in 0..200 {
        let cut = rng.index(bytes.len());
        exercise_loaded(&bytes[..cut]);
    }
    // Deterministic sweep over the fragile region right after the header.
    for cut in 0..64.min(bytes.len()) {
        exercise_loaded(&bytes[..cut]);
    }
}

#[test]
fn corrupted_streams_error_instead_of_panicking() {
    let trace = random_trace(0xD1CE, 800)
        .with_chunk_index(4)
        .expect("chunk index");
    let mut pristine = Vec::new();
    trace.save(&mut pristine).expect("save");
    let mut rng = Rng::new(0xF00D);
    for _ in 0..200 {
        let mut bytes = pristine.clone();
        // Flip one to four random bytes anywhere in the file.
        for _ in 0..=rng.index(4) {
            let at = rng.index(bytes.len());
            bytes[at] ^= rng.next_u64() as u8 | 1;
        }
        exercise_loaded(&bytes);
    }
}

/// Load and, when that succeeds, push the bytes through every decode
/// surface. Any outcome but a panic is acceptable.
fn exercise_loaded(bytes: &[u8]) {
    let Ok(t) = Trace::load(&mut { bytes }) else {
        return;
    };
    let mut tool = TquadTool::new(TquadOptions::default().with_interval(777));
    let _ = t.replay(&mut tool);
    let _ = t.chunk_index(3);
    let mut tool = QuadTool::new(QuadOptions::default());
    let _ = t.replay_sharded(&mut tool, 4);
}
