//! Self-observability of the replay pipeline: a sharded replay under the
//! `tq-obs` layer must export a Chrome trace-event document that (a) is
//! valid JSON by the workspace's own strict parser, (b) contains one named
//! track per shard, and (c) covers the pipeline stages — decode, fork,
//! every shard, merge.
//!
//! The span registry is process-global, so every test here serializes on
//! one mutex and drains the registry before starting.

use std::sync::{Mutex, OnceLock};
use tq_isa::prng::Rng;
use tq_isa::RoutineId;
use tq_report::Json;
use tq_tquad::{TquadOptions, TquadTool};
use tq_trace::{Trace, TraceRecorder};
use tq_vm::{Event, ProgramInfo, RoutineMeta, Tool};

/// Global-state tests must not interleave: spans drain into whichever
/// test gets there first. `lock()` also tolerates poisoning so one failed
/// assertion does not cascade into every later test.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let m = LOCK.get_or_init(|| Mutex::new(()));
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A small seeded trace with enough events to give every shard work.
fn synthetic_trace(seed: u64, n_events: usize) -> Trace {
    let mk = |id: u32, name: &str, base: u64| RoutineMeta {
        id: RoutineId(id),
        name: name.into(),
        image: "app".into(),
        main_image: true,
        start: base,
        end: base + 0x100,
    };
    let info = ProgramInfo {
        routines: vec![mk(0, "main", 0x10000), mk(1, "kernel_a", 0x11000)],
        stack_base: 0x3FFF_FF00,
        entry: 0x10000,
    };
    let mut rng = Rng::new(seed);
    let mut rec = TraceRecorder::new();
    rec.on_attach(&info);
    let mut icount = 0u64;
    for _ in 0..n_events {
        icount += rng.u64_in(1, 9);
        rec.on_event(&Event::MemWrite {
            ip: 0x10000 + 8 * rng.u64_in(0, 30),
            ea: 0x1000_0000 + rng.u64_in(0, 4096),
            size: 1 << rng.index(4),
            sp: info.stack_base,
            icount,
            rtn: RoutineId(0),
        });
    }
    rec.on_fini(icount + 1);
    rec.into_trace()
}

/// Run one sharded replay and return the parsed Chrome trace document.
fn sharded_replay_doc(jobs: usize) -> Json {
    tq_obs::set_enabled(true);
    let _ = tq_obs::drain_spans(); // start from a clean registry
    let trace = synthetic_trace(0x0B5, 4_000);
    let mut tool = TquadTool::new(TquadOptions::default().with_interval(777));
    trace
        .replay_sharded(&mut tool, jobs)
        .expect("sharded replay");
    let doc = tq_obs::drain_chrome_trace();
    Json::parse(&doc).expect("chrome trace is valid JSON by the strict workspace parser")
}

fn complete_events(doc: &Json) -> Vec<&Json> {
    doc.get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect()
}

#[test]
fn sharded_replay_emits_one_span_per_shard_and_all_stages() {
    let _g = lock();
    const JOBS: usize = 4;
    let doc = sharded_replay_doc(JOBS);
    let events = complete_events(&doc);
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for stage in ["replay_sharded", "decode", "fork", "merge"] {
        assert!(
            names.contains(&stage),
            "missing `{stage}` span in {names:?}"
        );
    }
    for shard in 0..JOBS {
        let want = format!("shard-{shard}");
        assert!(
            names.iter().any(|n| **n == want),
            "missing `{want}` span in {names:?}"
        );
    }
}

#[test]
fn shard_spans_land_on_distinct_tracks() {
    let _g = lock();
    const JOBS: usize = 3;
    let doc = sharded_replay_doc(JOBS);
    let events = complete_events(&doc);
    // Each shard span must sit on its own tid: shard-0 replays on the
    // calling thread, every other shard on its own worker.
    let mut shard_tids = Vec::new();
    for shard in 0..JOBS {
        let want = format!("shard-{shard}");
        let tid = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some(&want))
            .and_then(|e| e.get("tid"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("no tid on `{want}`"));
        assert!(
            !shard_tids.contains(&tid),
            "shard-{shard} shares tid {tid} with an earlier shard"
        );
        shard_tids.push(tid);
    }
    // Worker tracks are named, so Perfetto shows shard-k labels: the
    // metadata events must cover every non-main shard tid.
    let named_tids: Vec<u64> = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    for &tid in &shard_tids[1..] {
        assert!(
            named_tids.contains(&tid),
            "worker tid {tid} has no thread_name metadata"
        );
    }
}

#[test]
fn exported_timestamps_are_monotonically_nondecreasing() {
    let _g = lock();
    let doc = sharded_replay_doc(2);
    let ts: Vec<f64> = complete_events(&doc)
        .iter()
        .filter_map(|e| e.get("ts").and_then(Json::as_f64))
        .collect();
    assert!(ts.len() >= 4, "expected several spans, got {}", ts.len());
    for w in ts.windows(2) {
        assert!(
            w[0] <= w[1],
            "ts went backwards: {} then {} in {ts:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn disabled_layer_exports_an_empty_but_valid_document() {
    let _g = lock();
    tq_obs::set_enabled(true);
    let _ = tq_obs::drain_spans();
    tq_obs::set_enabled(false);
    let trace = synthetic_trace(0x0FF, 1_000);
    let mut tool = TquadTool::new(TquadOptions::default().with_interval(777));
    trace.replay_sharded(&mut tool, 3).expect("sharded replay");
    let doc = tq_obs::drain_chrome_trace();
    let parsed = Json::parse(&doc).expect("valid JSON even when disabled");
    assert_eq!(
        parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(|a| a.len()),
        Some(0),
        "disabled layer must record nothing"
    );
    tq_obs::set_enabled(true); // leave the layer as other tests expect it
}
