//! `tq` — command-line driver for the tQUAD reproduction.
//!
//! Mirrors the paper tool's command line: the profiled program is the
//! rebuilt *hArtes wfs* application, and the tQUAD options are the paper's
//! three (time-slice interval, include/exclude local stack area accesses,
//! exclude library/OS routines).
//!
//! ```text
//! tq run     [--app wfs|img] [--scale tiny|small|paper]
//! tq capture [--app …] [--scale …] --out FILE [--fuel N] [--format v1|v2|v3]
//! tq gprof   [--scale …] [--interval N] [--jobs N]
//! tq tquad   [--scale …] [--interval N] [--exclude-stack] [--exclude-libs]
//!            [--chart read|write] [--kernels a,b,c] [--width N] [--jobs N]
//! tq quad    [--scale …] [--exclude-stack] [--exclude-libs] [--dot PATH]
//!            [--jobs N]
//! tq phases  [--scale …] [--interval N] [--strategy cosine|interval] [--jobs N]
//! tq intervals [--scale …] [--interval N] [--kernel NAME] [--gap N] [--jobs N]
//!
//! every profiling subcommand (gprof/tquad/quad/phases/intervals) also
//! accepts [--capture FILE]: replay a `tq capture` file through the
//! streaming reader (one decoded chunk at a time — works on captures
//! larger than RAM) instead of building and running the application.
//! tq disasm  [--routine NAME]
//! tq serve   [--addr HOST:PORT] [--workers N] [--state-dir PATH]
//!            [--cache-mb N] [--queue N] [--timeout-ms N] [--capture-fuel N]
//!            [--max-conns N] [--read-timeout-ms N] [--slow-job-ms N]
//!            [--peers A,B,C] [--advertise HOST:PORT] [--probe-interval-ms N]
//!
//! every VM-running subcommand: [--vm-opt off|fuse|trace]
//!                              [--instr full|filter:…|sample:…|converge:…]
//! tq submit  [--addr HOST:PORT] [--tool tquad|quad|gprof|phases]
//!            [--app …] [--scale …] [--interval N] [--exclude-stack]
//!            [--exclude-libs|--track-libs] [--retries N] [--timeout SECS]
//!            [--peers A,B,C] [--fallback-hint-ms N] [--backoff-cap-ms N]
//!            | --route | --stats | --metrics | --logs | --ping | --shutdown
//! tq fleet-status --peers A,B,C [--metrics] [--timeout SECS]
//! tq fleet-trace  --peers A,B,C --out FILE [--timeout SECS]
//! ```
//!
//! `--stats`/`--metrics` become roster-wide when `--peers` is given:
//! stats print one JSON line per peer, metrics print one merged
//! exposition with a `peer` label on every sample.
//!
//! See `docs/CLI.md` for the complete flag-by-flag reference and
//! `docs/OPERATIONS.md` for running `tq serve` in production (overload
//! behaviour, fault injection via `TQ_FAULTS`, the structured event log
//! and its `TQ_LOG` filter, reading `stats`/`metrics`, and reading a
//! merged distributed trace).
//!
//! `serve`/`submit` are the front end for the `tq-profd` service: one
//! daemon records each workload once and answers every profiling variant
//! by parallel offline replay (see `crates/tq-profd`).
//!
//! Every subcommand also accepts the self-observability flags:
//! `--trace-out FILE` writes a Chrome trace-event JSON of the run's
//! internal spans (open in Perfetto / chrome://tracing), and `--no-obs`
//! disables the instrumentation layer entirely (see `crates/tq-obs`).

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;
use tq_gprof::{GprofOptions, GprofTool};
use tq_imgproc::{ImgApp, ImgConfig};
use tq_profd::{
    AppId, Client, ClientConfig, FleetClient, JobSpec, Request, RetryPolicy, RetryTrail, Scale,
    Server, ServerConfig, StackPolicy, ToolId,
};
use tq_quad::{qdu_graph, QuadOptions, QuadTool};
use tq_report::Json;
use tq_tquad::{
    figure_chart, phase_table, LibPolicy, Measure, PhaseDetector, PhaseStrategy, TquadOptions,
    TquadTool,
};
use tq_wfs::{WfsApp, WfsConfig};

struct Args {
    flags: HashMap<String, String>,
    bools: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut bools = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument `{a}`"));
            };
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} expects a value"))?;
                    flags.insert(name.to_string(), value.clone());
                }
                _ => bools.push(name.to_string()),
            }
        }
        Ok(Args { flags, bools })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }

    fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
            None => Ok(default),
        }
    }

    /// Like [`Self::u64_or`], but zero is rejected with a usage error. Flags
    /// like `--interval 0` or `--jobs 0` are always mistakes — an interval
    /// of zero instructions has no time axis and zero shards do no work —
    /// and must fail loudly instead of panicking deep inside a tool.
    fn positive_u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.u64_or(name, default)? {
            0 => Err(format!("--{name} must be a positive number")),
            n => Ok(n),
        }
    }
}

/// The profiled application: compiled program + staged input, behind one
/// interface so every subcommand works on either case study.
struct App {
    program: tq_isa::Program,
    input: (String, Vec<u8>),
}

impl App {
    fn make_vm(&self, opt: tq_vm::VmOpt) -> Result<tq_vm::Vm, String> {
        let mut vm = tq_vm::Vm::new(self.program.clone()).map_err(|e| e.to_string())?;
        vm.set_vm_opt(opt);
        vm.fs_mut().add_file(&self.input.0, self.input.1.clone());
        Ok(vm)
    }
}

/// Parse `--vm-opt off|fuse|trace`. Every level is observationally
/// identical (same profiles, same captured trace bytes); the flag only
/// trades decode-time work for interpreter speed, so each subcommand
/// picks its own default: one-shot commands stay on `off`, the long-lived
/// `serve` daemon defaults to `trace`.
fn vm_opt(args: &Args, default: tq_vm::VmOpt) -> Result<tq_vm::VmOpt, String> {
    match args.get("vm-opt") {
        Some(v) => tq_vm::VmOpt::parse(v),
        None => Ok(default),
    }
}

/// Parse `--instr full|filter:…|sample:…|converge:…` (grammar in
/// docs/CLI.md, accuracy tradeoffs in docs/ACCURACY.md). Unlike
/// `--vm-opt`, this flag *does* change what tools observe: reduced modes
/// trade instrumentation coverage for speed and attach an `instr` note to
/// the resulting profile. `None` when absent or observationally full.
fn instr_arg(args: &Args) -> Result<Option<tq_vm::InstrMode>, String> {
    match args.get("instr") {
        Some(spec) => {
            let mode = tq_vm::InstrMode::parse(spec)?;
            Ok(if mode.is_full() { None } else { Some(mode) })
        }
        None => Ok(None),
    }
}

/// Where a profiling subcommand gets its event stream: a live VM run over
/// the rebuilt application, or a capture file written by `tq capture`.
enum Source {
    Live(App),
    Capture(std::path::PathBuf),
}

/// `--capture FILE` replays an existing capture (no application build, no
/// VM run); otherwise build the app named by `--app`/`--scale`.
fn source_for(args: &Args) -> Result<Source, String> {
    match args.get("capture") {
        Some(path) => Ok(Source::Capture(path.into())),
        None => app_for(args).map(Source::Live),
    }
}

/// Run `tool` over the source and hand it back full of data.
///
/// Live source: `jobs == 1` attaches the tool to a live VM run (the
/// classic path); `jobs > 1` records the execution once, then shards the
/// offline replay across that many threads — the resulting profile is
/// byte-identical to the live run, just computed in parallel.
///
/// Capture source: the file is opened with [`tq_trace::Trace::open_streaming`]
/// and decoded one chunk at a time, so profiling a larger-than-RAM capture
/// costs one chunk of decoded events per replay thread, never the whole
/// stream. The profile is byte-identical to a live run of the same
/// workload (`scripts/verify.sh` holds this gate).
fn run_profiled<T: tq_vm::MergeTool + 'static>(
    source: &Source,
    args: &Args,
    jobs: usize,
    tool: T,
) -> Result<T, String> {
    let instr = instr_arg(args)?;
    let app = match source {
        Source::Capture(path) => {
            if instr.is_some() {
                return Err("--instr applies to live runs; a capture replays under the \
                     mode it was recorded with (use `tq capture --instr …`)"
                    .into());
            }
            let streaming = tq_trace::Trace::open_streaming(path)
                .map_err(|e| format!("open capture {}: {e}", path.display()))?;
            let mut tool = tool;
            if jobs > 1 {
                streaming
                    .replay_sharded(&mut tool, jobs)
                    .map_err(|e| format!("sharded streaming replay failed: {e}"))?;
            } else {
                streaming
                    .replay(&mut tool)
                    .map_err(|e| format!("streaming replay failed: {e}"))?;
            }
            return Ok(tool);
        }
        Source::Live(app) => app,
    };
    let mut vm = app.make_vm(vm_opt(args, tq_vm::VmOpt::Off)?)?;
    if let Some(mode) = instr {
        vm.set_instr_mode(mode)?;
    }
    if jobs > 1 {
        let trace = {
            let _span = tq_obs::span("capture", "vm");
            let h = vm.attach_tool(Box::new(tq_trace::TraceRecorder::new()));
            vm.run(None).map_err(|e| e.to_string())?;
            // Index at capture time: the one sequential scan happens here,
            // so the sharded replay below runs fully parallel.
            vm.detach_tool::<tq_trace::TraceRecorder>(h)
                .ok_or("internal error: detached tool had unexpected type")?
                .into_trace()
                .with_chunk_index(tq_trace::DEFAULT_CHUNKS)
                .map_err(|e| format!("chunk indexing failed: {e}"))?
        };
        let mut tool = tool;
        trace
            .replay_sharded(&mut tool, jobs)
            .map_err(|e| format!("sharded replay failed: {e}"))?;
        Ok(tool)
    } else {
        let h = vm.attach_tool(Box::new(tool));
        vm.run(None).map_err(|e| e.to_string())?;
        vm.detach_tool::<T>(h)
            .map(|boxed| *boxed)
            .ok_or_else(|| "internal error: detached tool had unexpected type".to_string())
    }
}

fn app_for(args: &Args) -> Result<App, String> {
    let scale = args.get("scale").unwrap_or("small");
    match args.get("app").unwrap_or("wfs") {
        "wfs" => {
            let config = match scale {
                "tiny" => WfsConfig::tiny(),
                "small" => WfsConfig::small(),
                "paper" => WfsConfig::paper_scaled(),
                other => return Err(format!("unknown --scale `{other}` (tiny|small|paper)")),
            };
            let a = WfsApp::build(config);
            Ok(App {
                program: a.compiled.program.clone(),
                input: (tq_wfs::INPUT_WAV.into(), a.input_wav.clone()),
            })
        }
        "img" => {
            let config = match scale {
                "tiny" => ImgConfig::tiny(),
                "small" => ImgConfig::small(),
                "paper" => ImgConfig::scaled(),
                other => return Err(format!("unknown --scale `{other}` (tiny|small|paper)")),
            };
            let a = ImgApp::build(config);
            Ok(App {
                program: a.compiled.program.clone(),
                input: (tq_imgproc::INPUT_PGM.into(), a.input_pgm.clone()),
            })
        }
        other => Err(format!("unknown --app `{other}` (wfs|img)")),
    }
}

/// Socket policy for fleet scrapes (`fleet-status`, `fleet-trace`):
/// short timeouts, because a scrape visits every peer sequentially and
/// an unreachable member must cost seconds, not the submit default's
/// ten-minute read budget. `--timeout SECS` overrides.
fn fleet_scrape_config(args: &Args) -> Result<ClientConfig, String> {
    let timeout = Duration::from_secs(args.positive_u64_or("timeout", 5)?);
    let defaults = ClientConfig::default();
    Ok(ClientConfig {
        connect_timeout: defaults.connect_timeout.min(timeout),
        read_timeout: Some(timeout),
        retry: RetryPolicy::default(),
    })
}

/// `--peers a,b,c` as a cleaned list (empty when the flag is absent).
fn peers_arg(args: &Args) -> Vec<String> {
    args.get("peers")
        .map(|list| {
            list.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default()
}

fn lib_policy(args: &Args) -> LibPolicy {
    if args.has("exclude-libs") {
        LibPolicy::Drop
    } else if args.has("track-libs") {
        LibPolicy::Track
    } else {
        LibPolicy::AttributeToCaller
    }
}

fn usage() -> String {
    "usage: tq <run|capture|gprof|tquad|quad|phases|intervals|disasm|serve|submit|\n\
     \u{20}          fleet-status|fleet-trace> [options]\n\
     common options: --app wfs|img --scale tiny|small|paper\n\
     \u{20}               --vm-opt off|fuse|trace (interpreter optimisation level;\n\
     \u{20}               observationally identical — same profiles, same capture\n\
     \u{20}               bytes — only faster; default off, `serve` defaults trace)\n\
     \u{20}               --jobs N (record once, shard the replay over N threads;\n\
     \u{20}               the profile is byte-identical to a sequential run)\n\
     \u{20}               --capture FILE (gprof/tquad/quad/phases/intervals:\n\
     \u{20}               replay an existing `tq capture` file via the streaming\n\
     \u{20}               reader — one decoded chunk at a time, larger-than-RAM\n\
     \u{20}               safe — instead of building and running the app)\n\
     \u{20}               --instr full|filter:a,b|filter:!a,b|filter:*|\n\
     \u{20}               sample:K[/SLICE][@SEED]|converge:TOL,N[,R][/SLICE]\n\
     \u{20}               (reduced instrumentation on live runs: per-routine\n\
     \u{20}               filters, every-k-th-slice sampling, convergence\n\
     \u{20}               gating; parts compose with `+`; profiles carry an\n\
     \u{20}               `instr` note and scale counters back — accuracy\n\
     \u{20}               bounds and cookbook in docs/ACCURACY.md)\n\
     \u{20}               --trace-out FILE (write a Chrome trace of this run's\n\
     \u{20}               internal spans; open in Perfetto) --no-obs (disable\n\
     \u{20}               the self-profiling layer)\n\
     capture options: --out FILE (required) --fuel N (0 = unbounded)\n\
     \u{20}               --format v1|v2|v3 (on-disk trace format; default v3 —\n\
     \u{20}               columnar, smallest, chunk-seekable)\n\
     tquad options:  --interval N --exclude-stack --exclude-libs --chart read|write\n\
     \u{20}               --kernels a,b,c --width N\n\
     quad options:   --exclude-stack --exclude-libs --dot PATH\n\
     phases options: --interval N --strategy cosine|interval\n\
     intervals opts: --interval N --kernel NAME --gap N\n\
     gprof options:  --interval N --track-libs\n\
     disasm options: --routine NAME\n\
     serve options:  --addr HOST:PORT --workers N --state-dir PATH --cache-mb N\n\
     \u{20}               --queue N --timeout-ms N --capture-fuel N --max-conns N\n\
     \u{20}               --read-timeout-ms N (0 = never reap idle connections;\n\
     \u{20}               fault injection via TQ_FAULTS=, see docs/OPERATIONS.md)\n\
     \u{20}               --peers A,B,C (join a fleet; cache shards by digest)\n\
     \u{20}               --advertise HOST:PORT --probe-interval-ms N\n\
     \u{20}               --slow-job-ms N (warn-log jobs slower than N; 0 = off)\n\
     \u{20}               structured event log filter via TQ_LOG=level, see docs\n\
     submit options: --addr HOST:PORT --tool tquad|quad|gprof|phases --app --scale\n\
     \u{20}               --interval N --exclude-stack --exclude-libs --track-libs\n\
     \u{20}               --instr SPEC (reduced-instrumentation job variant)\n\
     \u{20}               --retries N (resubmit with backoff on busy responses)\n\
     \u{20}               --timeout SECS (connect/read socket timeouts)\n\
     \u{20}               --peers A,B,C (route to the ring owner, with failover)\n\
     \u{20}               --fallback-hint-ms N --backoff-cap-ms N (retry tuning)\n\
     \u{20}               (or one of: --route --stats --metrics --logs --ping\n\
     \u{20}               --shutdown;\n\
     \u{20}               --stats/--metrics with --peers scrape the whole roster;\n\
     \u{20}               exit 3 = job finally failed after exhausting retries)\n\
     fleet-status:   --peers A,B,C (required) --metrics --timeout SECS\n\
     \u{20}               (per-peer health table, or one merged peer-labelled\n\
     \u{20}               Prometheus exposition with --metrics)\n\
     fleet-trace:    --peers A,B,C --out FILE (merge every peer's span ring\n\
     \u{20}               into one clock-aligned Chrome trace; open in Perfetto)\n\
     full reference: docs/CLI.md; operations handbook: docs/OPERATIONS.md"
        .to_string()
}

/// A CLI failure: what to print, whether the usage text helps, and the
/// process exit code. Exit codes are part of the interface (docs/CLI.md):
/// `1` = usage/config/tool error, `3` = a submitted job finally failed
/// after exhausting its retries (scripts distinguish "you called it wrong"
/// from "the fleet could not serve this").
struct Failure {
    message: String,
    exit: u8,
    print_usage: bool,
}

impl Failure {
    /// Final submit failure: exit 3, no usage text (the invocation was
    /// fine; the service was not).
    fn submit(message: String) -> Failure {
        Failure {
            message,
            exit: 3,
            print_usage: false,
        }
    }
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure {
            message,
            exit: 1,
            print_usage: true,
        }
    }
}

impl From<&str> for Failure {
    fn from(message: &str) -> Failure {
        Failure::from(message.to_string())
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            if f.print_usage {
                eprintln!("error: {}\n\n{}", f.message, usage());
            } else {
                eprintln!("error: {}", f.message);
            }
            ExitCode::from(f.exit)
        }
    }
}

fn run(argv: &[String]) -> Result<(), Failure> {
    let Some(cmd) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let args = Args::parse(&argv[1..])?;
    if args.has("no-obs") {
        tq_obs::set_enabled(false);
    }
    if tq_obs::enabled() {
        tq_obs::set_thread_name("main".to_string());
    }
    // Held across the whole subcommand, dropped explicitly before the
    // trace drain below so the top-level span makes it into the export.
    let cmd_span = tq_obs::span_named(format!("tq {cmd}"), "cli");

    match cmd.as_str() {
        "run" => {
            let app = app_for(&args)?;
            let opt = vm_opt(&args, tq_vm::VmOpt::Off)?;
            let mut vm = app.make_vm(opt)?;
            if let Some(mode) = instr_arg(&args)? {
                vm.set_instr_mode(mode)?;
            }
            let exit = vm.run(None).map_err(|e| e.to_string())?;
            println!(
                "finished: {} instructions, exit {:?}",
                exit.icount, exit.reason
            );
            let mut names = vm.fs().file_names();
            names.sort_unstable();
            for name in names {
                if name != app.input.0 {
                    println!(
                        "{name}: {} bytes",
                        vm.fs().file(name).map(|f| f.len()).unwrap_or(0)
                    );
                }
            }
            if !vm.console().is_empty() {
                println!("console: {}", vm.console().trim_end());
            }
            let s = vm.stats();
            println!(
                "code cache: {} blocks built, {} block executions, {} hits",
                s.blocks_built, s.block_execs, s.cache_hits
            );
            if opt != tq_vm::VmOpt::Off {
                println!(
                    "vm-opt {opt}: {} blocks fused, {} traces recorded, \
                     {} side exits, {:.1}% of instructions in traces",
                    s.blocks_fused,
                    s.traces_recorded,
                    s.trace_side_exits,
                    s.trace_instr_share(exit.icount) * 100.0
                );
            }
            if let Some(info) = vm.instr_info() {
                println!(
                    "instr {}: {:.1}% of instructions covered, {} filtered routine(s), \
                     {} gap(s)",
                    info.spec,
                    info.coverage() * 100.0,
                    info.filtered.len(),
                    info.gaps.len()
                );
            }
        }
        "capture" => {
            // Record the workload once under the trace recorder and write
            // the encoded capture to disk — the offline artifact every
            // analysis tool can replay. The file is byte-identical
            // whatever `--vm-opt` level recorded it; `scripts/verify.sh`
            // diffs an `off` capture against a `trace` capture to hold
            // the interpreter optimisations to that contract.
            let app = app_for(&args)?;
            let opt = vm_opt(&args, tq_vm::VmOpt::Off)?;
            let out = args
                .get("out")
                .ok_or("capture requires --out FILE (the trace file to write)")?;
            let fuel = match args.u64_or("fuel", 0)? {
                0 => None,
                n => Some(n),
            };
            let mut vm = app.make_vm(opt)?;
            // A reduced-mode capture records fewer memory events and
            // carries its mode metadata in the file's TQIM tail, so every
            // later replay reconstructs with the gap log in hand.
            if let Some(mode) = instr_arg(&args)? {
                vm.set_instr_mode(mode)?;
            }
            let h = vm.attach_tool(Box::new(tq_trace::TraceRecorder::new()));
            match vm.run(fuel) {
                Ok(_) => {}
                // A fuel-bounded capture is still a capture (the service
                // uses the same convention for misbehaving workloads).
                Err(tq_vm::VmError::FuelExhausted { .. }) if fuel.is_some() => {}
                Err(e) => return Err(e.to_string().into()),
            }
            let format = match args.get("format").unwrap_or("v3") {
                "v1" => tq_trace::TraceFormat::V1,
                "v2" => tq_trace::TraceFormat::V2,
                "v3" => tq_trace::TraceFormat::V3,
                other => return Err(format!("unknown --format `{other}` (v1|v2|v3)").into()),
            };
            let mut trace = vm
                .detach_tool::<tq_trace::TraceRecorder>(h)
                .ok_or("internal error: detached tool had unexpected type")?
                .into_trace();
            // Index at capture time (v2/v3): the one sequential scan
            // happens here, so later `--capture FILE --jobs N` replays and
            // streaming readers never pay it. v1 keeps the index-less
            // legacy layout.
            if format != tq_trace::TraceFormat::V1 {
                trace = trace
                    .with_chunk_index(tq_trace::DEFAULT_CHUNKS)
                    .map_err(|e| format!("chunk indexing failed: {e}"))?;
            }
            trace
                .save_to_path_as(std::path::Path::new(out), format)
                .map_err(|e| format!("write {out}: {e}"))?;
            let s = vm.stats();
            let written = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
            println!(
                "capture written to {out}: {} events, {written} bytes, digest {}",
                trace.events.len(),
                trace.digest()
            );
            eprintln!(
                "# vm-opt {opt}: {} blocks fused, {} traces recorded, {} side exits",
                s.blocks_fused, s.traces_recorded, s.trace_side_exits
            );
            if let Some(info) = vm.instr_info() {
                eprintln!(
                    "# instr {}: {:.1}% of instructions covered, {} gap(s)",
                    info.spec,
                    info.coverage() * 100.0,
                    info.gaps.len()
                );
            }
        }
        "gprof" => {
            let src = source_for(&args)?;
            let interval = args.positive_u64_or("interval", 5_000)?;
            let jobs = args.positive_u64_or("jobs", 1)? as usize;
            let p = run_profiled(
                &src,
                &args,
                jobs,
                GprofTool::new(GprofOptions {
                    sample_interval: interval,
                    track_libs: matches!(lib_policy(&args), LibPolicy::Track),
                    ..Default::default()
                }),
            )?;
            println!("{}", p.into_profile().table("FLAT PROFILE").render());
        }
        "tquad" => {
            let src = source_for(&args)?;
            let interval = args.positive_u64_or("interval", 20_000)?;
            let jobs = args.positive_u64_or("jobs", 1)? as usize;
            let include_stack = !args.has("exclude-stack");
            let profile = run_profiled(
                &src,
                &args,
                jobs,
                TquadTool::new(
                    TquadOptions::default()
                        .with_interval(interval)
                        .with_lib_policy(lib_policy(&args)),
                ),
            )?
            .into_profile();

            let measure = match (args.get("chart").unwrap_or("read"), include_stack) {
                ("read", true) => Measure::ReadIncl,
                ("read", false) => Measure::ReadExcl,
                ("write", true) => Measure::WriteIncl,
                ("write", false) => Measure::WriteExcl,
                (other, _) => return Err(format!("unknown --chart `{other}` (read|write)").into()),
            };
            let kernels: Vec<String> = match args.get("kernels") {
                Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
                None => profile
                    .active_kernels()
                    .iter()
                    .take(10)
                    .map(|k| k.name.clone())
                    .collect(),
            };
            let names: Vec<&str> = kernels.iter().map(|s| s.as_str()).collect();
            let width = args.positive_u64_or("width", 96)? as usize;
            println!(
                "{}",
                figure_chart(&profile, &names, measure, width, None).render()
            );
            println!(
                "{} slices of {} instructions; {} prefetches ignored, {} accesses dropped",
                profile.n_slices(),
                profile.interval,
                profile.prefetches_ignored,
                profile.dropped_accesses
            );
            // Reconstructed profiles must never pass for exact ones
            // (docs/ACCURACY.md): the provenance note rides in the output.
            if let Some(n) = &profile.instr {
                println!(
                    "# instr {}: {:.1}% coverage, {} slice(s) carry-filled, {} measured",
                    n.spec,
                    n.coverage() * 100.0,
                    n.filled_slices,
                    n.measured_slices
                );
            }
        }
        "quad" => {
            let src = source_for(&args)?;
            let include_stack = !args.has("exclude-stack");
            let jobs = args.positive_u64_or("jobs", 1)? as usize;
            let profile = run_profiled(
                &src,
                &args,
                jobs,
                QuadTool::new(QuadOptions {
                    include_stack,
                    lib_policy: lib_policy(&args),
                }),
            )?
            .into_profile();

            let mut t = tq_report::Table::new(format!(
                "QUAD (stack accesses {})",
                if include_stack {
                    "included"
                } else {
                    "excluded"
                }
            ))
            .col("kernel", tq_report::Align::Left)
            .col("IN", tq_report::Align::Right)
            .col("IN UnMA", tq_report::Align::Right)
            .col("OUT", tq_report::Align::Right)
            .col("OUT UnMA", tq_report::Align::Right);
            for r in profile.active_rows() {
                t.row(vec![
                    r.name.clone(),
                    tq_report::n(r.in_bytes),
                    tq_report::n(r.in_unma),
                    tq_report::n(r.out_bytes),
                    tq_report::n(r.out_unma),
                ]);
            }
            println!("{}", t.render());
            if let Some(n) = &profile.instr {
                println!(
                    "# instr {}: byte totals scaled from {:.1}% coverage; \
                     UnMA counts are unscaled lower bounds",
                    n.spec,
                    n.coverage_ppm as f64 / 1e4
                );
            }
            if let Some(path) = args.get("dot") {
                std::fs::write(path, qdu_graph(&profile, 1024).render())
                    .map_err(|e| e.to_string())?;
                println!("QDU graph written to {path}");
            }
        }
        "phases" => {
            let src = source_for(&args)?;
            let interval = args.positive_u64_or("interval", 2_000)?;
            let jobs = args.positive_u64_or("jobs", 1)? as usize;
            let profile = run_profiled(
                &src,
                &args,
                jobs,
                TquadTool::new(
                    TquadOptions::default()
                        .with_interval(interval)
                        .with_lib_policy(lib_policy(&args)),
                ),
            )?
            .into_profile();
            let detector = match args.get("strategy").unwrap_or("cosine") {
                "cosine" => PhaseDetector::default(),
                "interval" => PhaseDetector {
                    strategy: PhaseStrategy::IntervalOverlap { threshold: 0.3 },
                    ..PhaseDetector::default()
                },
                other => {
                    return Err(format!("unknown --strategy `{other}` (cosine|interval)").into())
                }
            };
            let phases = detector.detect(&profile);
            println!("{}", phase_table(&profile, &phases).render());
        }
        "intervals" => {
            // "tQUAD is capable of providing the detailed information
            // about the exact time intervals in which a kernel is
            // communicating with the memory." (§V)
            let src = source_for(&args)?;
            let interval = args.positive_u64_or("interval", 2_000)?;
            let gap = args.u64_or("gap", 0)?; // zero gap is meaningful: no interval merging
            let jobs = args.positive_u64_or("jobs", 1)? as usize;
            let profile = run_profiled(
                &src,
                &args,
                jobs,
                TquadTool::new(
                    TquadOptions::default()
                        .with_interval(interval)
                        .with_lib_policy(lib_policy(&args)),
                ),
            )?
            .into_profile();
            let wanted = args.get("kernel");
            for k in profile.active_kernels() {
                if let Some(w) = wanted {
                    if k.name != w {
                        continue;
                    }
                }
                let ivs = profile.activity_intervals(k, !args.has("exclude-stack"), gap);
                println!("{} — {} interval(s):", k.name, ivs.len());
                for iv in ivs.iter().take(40) {
                    println!(
                        "    slices {:>8}-{:<8} ({} slices, {} B, {:.4} B/instr)",
                        iv.start,
                        iv.end,
                        iv.end - iv.start + 1,
                        iv.bytes,
                        iv.bytes as f64 / ((iv.end - iv.start + 1) * interval) as f64
                    );
                }
                if ivs.len() > 40 {
                    println!("    … {} more", ivs.len() - 40);
                }
            }
        }
        "disasm" => {
            let app = app_for(&args)?;
            let program = &app.program;
            let want = args.get("routine");
            for img in &program.images {
                for r in &img.routines {
                    if let Some(w) = want {
                        if r.name != w {
                            continue;
                        }
                    }
                    println!(
                        "{} <{}> ({}):",
                        r.name,
                        img.name,
                        if img.is_main { "main" } else { "library" }
                    );
                    let mut pc = r.start;
                    while pc < r.end {
                        let inst = img.fetch(pc).map_err(|e| e.to_string())?;
                        println!("  {pc:#08x}: {}", tq_isa::disassemble(&inst));
                        pc += tq_isa::INST_BYTES;
                    }
                    println!();
                }
            }
        }
        "serve" => {
            let defaults = ServerConfig::default();
            let config = ServerConfig {
                addr: args.get("addr").unwrap_or(&defaults.addr).to_string(),
                workers: args.positive_u64_or("workers", defaults.workers as u64)? as usize,
                state_dir: args.get("state-dir").map(std::path::PathBuf::from),
                cache_bytes: args.u64_or("cache-mb", defaults.cache_bytes >> 20)? << 20,
                queue_depth: args.positive_u64_or("queue", defaults.queue_depth as u64)? as usize,
                job_timeout: Duration::from_millis(
                    args.positive_u64_or("timeout-ms", defaults.job_timeout.as_millis() as u64)?,
                ),
                capture_fuel: match args.u64_or("capture-fuel", 0)? {
                    0 => None,
                    n => Some(n),
                },
                vm_opt: vm_opt(&args, defaults.vm_opt)?,
                max_conns: args.positive_u64_or("max-conns", defaults.max_conns as u64)? as usize,
                read_timeout: match args.u64_or(
                    "read-timeout-ms",
                    defaults
                        .read_timeout
                        .map(|d| d.as_millis() as u64)
                        .unwrap_or(0),
                )? {
                    0 => None,
                    ms => Some(Duration::from_millis(ms)),
                },
                // Fleet membership: `--peers` lists the *other* members'
                // advertised addresses; `--advertise` names this node on
                // the ring when the bind address is not it (port 0, NAT).
                peers: peers_arg(&args),
                advertise: args.get("advertise").map(str::to_string),
                probe_interval: Duration::from_millis(args.positive_u64_or(
                    "probe-interval-ms",
                    defaults.probe_interval.as_millis() as u64,
                )?),
                // 0 disables the slow-job log entirely.
                slow_job_ms: args.u64_or("slow-job-ms", defaults.slow_job_ms)?,
            };
            // Fault plans only arm the long-running service, never the
            // one-shot subcommands: rehearsing failure is a server
            // operator's deliberate act (TQ_FAULTS=... tq serve …).
            if tq_faults::init_from_env()? {
                tq_obs::log::warn(
                    "tq",
                    "faults_armed",
                    &[(
                        "plan",
                        std::env::var("TQ_FAULTS").unwrap_or_default().into(),
                    )],
                );
            }
            let workers = config.workers as u64;
            let cache_mb = config.cache_bytes >> 20;
            let peer_list = config.peers.join(",");
            let server = Server::start(config)?;
            let addr = server.local_addr();
            if !peer_list.is_empty() {
                tq_obs::log::info(
                    "tq",
                    "fleet_member",
                    &[("peers", peer_list.as_str().into())],
                );
            }
            // Startup record on stderr: stdout stays parseable (scripts
            // read the "listening on" line for the bound port).
            tq_obs::log::info(
                "tq",
                "serving",
                &[
                    ("addr", addr.to_string().into()),
                    ("workers", workers.into()),
                    ("cache_mb", cache_mb.into()),
                ],
            );
            println!("tq-profd listening on {addr}");
            println!("stop with: tq submit --addr {addr} --shutdown");
            server.join()?;
            println!("tq-profd stopped");
        }
        "submit" => {
            let default_addr = ServerConfig::default().addr;
            let addr = args.get("addr").unwrap_or(&default_addr);
            let client_defaults = ClientConfig::default();
            // One knob bounds both socket timeouts: connect keeps its
            // short default unless the cap is lower, reads get the full
            // budget (a cold paper-scale job can take minutes).
            let timeout = Duration::from_secs(
                args.positive_u64_or(
                    "timeout",
                    client_defaults
                        .read_timeout
                        .map(|d| d.as_secs())
                        .unwrap_or(630),
                )?,
            );
            // Backoff tuning (satellite knobs over RetryPolicy; the
            // defaults are the service's long-standing behaviour).
            let retry = RetryPolicy {
                fallback_hint_ms: args
                    .positive_u64_or("fallback-hint-ms", RetryPolicy::default().fallback_hint_ms)?,
                backoff_cap: Duration::from_millis(args.positive_u64_or(
                    "backoff-cap-ms",
                    RetryPolicy::default().backoff_cap.as_millis() as u64,
                )?),
            };
            let config = ClientConfig {
                connect_timeout: client_defaults.connect_timeout.min(timeout),
                read_timeout: Some(timeout),
                retry,
            };
            // `--peers a,b,c` switches routing on: jobs go to the ring
            // owner of their content digest, with failover. The fleet
            // member list must match what the servers were started with.
            let peers: Vec<String> = peers_arg(&args);
            if args.has("ping") {
                let mut client = Client::connect_with(addr, config)?;
                let r = client.ping()?;
                println!("{}", r.encode());
            } else if args.has("shutdown") {
                let mut client = Client::connect_with(addr, config)?;
                let r = client.shutdown()?;
                println!("{}", r.encode());
            } else if args.has("stats") {
                // `--peers` makes the query roster-aware: one JSON line
                // per member instead of silently asking a single host.
                if peers.is_empty() {
                    let mut client = Client::connect_with(addr, config)?;
                    println!("{}", client.stats()?.render());
                } else {
                    for st in tq_profd::telemetry::scrape_fleet(&peers, &config) {
                        let mut line = Json::obj([("peer", Json::from(st.addr.as_str()))]);
                        match (st.stats, st.error) {
                            (Some(stats), _) => line.set("stats", stats),
                            (None, err) => line.set(
                                "error",
                                Json::from(err.unwrap_or_else(|| "no answer".into())),
                            ),
                        }
                        println!("{}", line.render());
                    }
                }
            } else if args.has("logs") {
                // The server's bounded log tail, one JSON record per
                // line — the daemon's recent history without touching
                // its stderr.
                let mut client = Client::connect_with(addr, config)?;
                let (level, records) = client.logs_tail()?;
                eprintln!("# level: {level}, {} record(s)", records.len());
                for record in records {
                    println!("{record}");
                }
            } else if args.has("metrics") {
                if peers.is_empty() {
                    let mut client = Client::connect_with(addr, config)?;
                    print!("{}", client.metrics()?);
                } else {
                    // Merged exposition with a `peer` label per sample —
                    // the same document `tq fleet-status --metrics` prints.
                    let scraped: Vec<(String, String)> =
                        tq_profd::telemetry::scrape_fleet(&peers, &config)
                            .into_iter()
                            .filter_map(|st| st.metrics.map(|m| (st.addr, m)))
                            .collect();
                    if scraped.is_empty() {
                        return Err("no fleet member answered a metrics request"
                            .to_string()
                            .into());
                    }
                    print!("{}", tq_profd::telemetry::merge_prometheus(&scraped));
                }
            } else {
                let tool = ToolId::parse(args.get("tool").unwrap_or("tquad"))?;
                let app = AppId::parse(args.get("app").unwrap_or("wfs"))?;
                let scale = Scale::parse(args.get("scale").unwrap_or("tiny"))?;
                let mut spec = JobSpec::new(app, scale, tool);
                spec.interval = args.positive_u64_or("interval", spec.interval)?;
                if args.has("exclude-stack") {
                    spec.stack = StackPolicy::Exclude;
                }
                spec.lib_policy = lib_policy(&args);
                if let Some(instr) = args.get("instr") {
                    // Canonicalise through the parser so equivalent
                    // spellings land on one cache entry server-side.
                    spec.instr = tq_vm::InstrMode::parse(instr)?.to_string();
                }
                if args.has("route") {
                    // Ask the server who owns this job's digest — the
                    // answer is the same from every fleet member.
                    let mut client = Client::connect_with(addr, config)?;
                    let resp = client.request(&Request::Route { spec, job_id: 0 })?;
                    println!("{}", resp.encode());
                    drop(cmd_span);
                    return Ok(());
                }
                let retries = args.u64_or("retries", 0)? as u32;
                let mut trail = RetryTrail::default();
                let outcome = if peers.is_empty() {
                    // A dead server on a job submission is a service
                    // failure (exit 3 with the trail), not a usage error
                    // — fold the connect error into the same path as a
                    // failed submit.
                    match Client::connect_with(addr, config) {
                        Ok(mut client) => client
                            .submit_with_retry_trail(spec, retries, &mut trail)
                            .map(|(profile, cached)| (profile, cached, None)),
                        Err(e) => {
                            trail.attempts += 1;
                            trail.peers_tried.push(addr.to_string());
                            trail.last_error = Some(e.clone());
                            Err(e)
                        }
                    }
                } else {
                    FleetClient::with_config(peers, config)
                        .submit_with_trail(spec, retries, &mut trail)
                        .map(|(profile, cached, served_by)| (profile, cached, Some(served_by)))
                };
                // The full attempt trail as one structured JSON line on
                // stderr — visible under TQ_LOG=debug, silent otherwise.
                tq_obs::log::debug(
                    "tq",
                    "retry_trail",
                    &[("trail", trail.to_json().render().into())],
                );
                match outcome {
                    Ok((profile, cached, served_by)) => {
                        // Profile JSON alone on stdout (byte-identical
                        // cold vs warm); bookkeeping goes to stderr.
                        println!("{}", profile.render());
                        let mut fields = vec![
                            ("job_id", tq_profd::job_id_hex(trail.job_id).into()),
                            ("cached", cached.into()),
                            ("attempts", u64::from(trail.attempts).into()),
                        ];
                        if let Some(by) = &served_by {
                            fields.push(("served_by", by.as_str().into()));
                        }
                        tq_obs::log::info("tq", "submit_done", &fields);
                    }
                    Err(e) => {
                        // Final failure: say what was actually tried, and
                        // exit 3 so scripts can tell a dead/overloaded
                        // service from a bad invocation.
                        tq_obs::log::error(
                            "tq",
                            "submit_failed",
                            &[
                                ("job_id", tq_profd::job_id_hex(trail.job_id).into()),
                                ("trail", trail.describe().into()),
                                ("error", e.as_str().into()),
                            ],
                        );
                        return Err(Failure::submit(e));
                    }
                }
            }
        }
        "fleet-status" => {
            // Scrape stats + metrics from every roster member and render
            // one fleet-level view; a dead peer is a row, not a failure.
            let peers = peers_arg(&args);
            if peers.is_empty() {
                return Err("fleet-status requires --peers A,B,C (the fleet roster)".into());
            }
            let config = fleet_scrape_config(&args)?;
            let statuses = tq_profd::telemetry::scrape_fleet(&peers, &config);
            if args.has("metrics") {
                // Merged Prometheus exposition alone on stdout, every
                // sample labelled peer="addr".
                let scraped: Vec<(String, String)> = statuses
                    .into_iter()
                    .filter_map(|st| st.metrics.map(|m| (st.addr, m)))
                    .collect();
                if scraped.is_empty() {
                    return Err("no fleet member answered a metrics request"
                        .to_string()
                        .into());
                }
                print!("{}", tq_profd::telemetry::merge_prometheus(&scraped));
            } else {
                let mut table = tq_report::Table::new("fleet status")
                    .col("peer", tq_report::Align::Left)
                    .col("state", tq_report::Align::Left)
                    .col("role", tq_report::Align::Left)
                    .col("uptime_s", tq_report::Align::Right)
                    .col("jobs", tq_report::Align::Right)
                    .col("hits", tq_report::Align::Right)
                    .col("misses", tq_report::Align::Right)
                    .col("peek_srv", tq_report::Align::Right)
                    .col("peek_fetch", tq_report::Align::Right)
                    .col("slow", tq_report::Align::Right);
                let mut errors: Vec<(String, String)> = Vec::new();
                for st in statuses {
                    match st.stats {
                        Some(stats) => {
                            // Fleet coordination counters live under the
                            // nested `fleet` object; solo nodes have none.
                            let u = |key: &str| {
                                stats
                                    .get(key)
                                    .or_else(|| stats.get("fleet").and_then(|f| f.get(key)))
                                    .and_then(Json::as_u64)
                                    .map(|v| v.to_string())
                                    .unwrap_or_else(|| "-".into())
                            };
                            let uptime = stats
                                .get("uptime_seconds")
                                .and_then(Json::as_f64)
                                .map(|s| format!("{s:.1}"))
                                .unwrap_or_else(|| "-".into());
                            let role = stats
                                .get("role")
                                .and_then(Json::as_str)
                                .unwrap_or("-")
                                .to_string();
                            table.row(vec![
                                st.addr.clone(),
                                "up".into(),
                                role,
                                uptime,
                                u("jobs_submitted"),
                                u("cache_hits"),
                                u("cache_misses"),
                                u("peek_serves"),
                                u("peek_fetches"),
                                u("slow_jobs"),
                            ]);
                        }
                        None => {
                            table.row(vec![
                                st.addr.clone(),
                                "unreachable".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                            ]);
                            errors.push((st.addr, st.error.unwrap_or_else(|| "no answer".into())));
                        }
                    }
                }
                println!("{}", table.render());
                for (addr, err) in errors {
                    eprintln!("# {addr}: {err}");
                }
            }
        }
        "fleet-trace" => {
            // One merged Chrome trace over every peer's span ring: clock
            // offsets estimated per peer, each peer re-homed under its
            // own pid, spans correlated across hops by args.job_id.
            let peers = peers_arg(&args);
            if peers.is_empty() {
                return Err("fleet-trace requires --peers A,B,C (the fleet roster)".into());
            }
            let out = args
                .get("out")
                .ok_or("fleet-trace requires --out FILE (the merged trace to write)")?;
            let config = fleet_scrape_config(&args)?;
            let doc = tq_profd::telemetry::fetch_merged_trace(&peers, &config)?;
            std::fs::write(out, &doc).map_err(|e| format!("write {out}: {e}"))?;
            println!(
                "fleet trace written to {out} ({} bytes; open in Perfetto or chrome://tracing)",
                doc.len()
            );
        }
        other => return Err(format!("unknown subcommand `{other}`").into()),
    }
    drop(cmd_span);
    if let Some(path) = args.get("trace-out") {
        let doc = tq_obs::drain_chrome_trace();
        std::fs::write(path, &doc).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "# trace: {path} ({} bytes; open in Perfetto or chrome://tracing)",
            doc.len()
        );
    }
    Ok(())
}
