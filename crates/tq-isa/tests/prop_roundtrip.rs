//! Property-based tests over the binary encoding: every constructible
//! instruction round-trips through encode/decode, and the decoder is total
//! (never panics) over arbitrary 64-bit words.

use proptest::prelude::*;
use tq_isa::{decode, disassemble, encode, BrCond, FReg, HostFn, Inst, MemWidth, Reg};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg)
}

fn width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B1),
        Just(MemWidth::B2),
        Just(MemWidth::B4),
        Just(MemWidth::B8)
    ]
}

fn cond() -> impl Strategy<Value = BrCond> {
    prop_oneof![
        Just(BrCond::Eq),
        Just(BrCond::Ne),
        Just(BrCond::Lt),
        Just(BrCond::Ge),
        Just(BrCond::Ltu),
        Just(BrCond::Geu)
    ]
}

fn hostfn() -> impl Strategy<Value = HostFn> {
    (0u16..10).prop_map(|c| HostFn::from_code(c).expect("codes 0..10 are valid"))
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Inst::Add { rd: a, rs1: b, rs2: c }),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Inst::Sub { rd: a, rs1: b, rs2: c }),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Inst::Mul { rd: a, rs1: b, rs2: c }),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Inst::Div { rd: a, rs1: b, rs2: c }),
        (reg(), reg(), reg()).prop_map(|(a, b, c)| Inst::Sltu { rd: a, rs1: b, rs2: c }),
        (reg(), reg(), any::<i32>()).prop_map(|(a, b, i)| Inst::AddI { rd: a, rs1: b, imm: i }),
        (reg(), reg(), any::<i32>()).prop_map(|(a, b, i)| Inst::SraI { rd: a, rs1: b, imm: i }),
        (reg(), any::<i32>()).prop_map(|(a, i)| Inst::Li { rd: a, imm: i }),
        (reg(), any::<i32>()).prop_map(|(a, i)| Inst::OrHi { rd: a, imm: i }),
        (freg(), freg(), freg()).prop_map(|(a, b, c)| Inst::FMul { fd: a, fs1: b, fs2: c }),
        (freg(), freg()).prop_map(|(a, b)| Inst::FSqrt { fd: a, fs: b }),
        (freg(), any::<f32>()).prop_map(|(a, v)| Inst::FLi { fd: a, value: v }),
        (reg(), freg(), freg()).prop_map(|(a, b, c)| Inst::FLe { rd: a, fs1: b, fs2: c }),
        (reg(), reg(), any::<i32>(), width())
            .prop_map(|(a, b, o, w)| Inst::Ld { rd: a, base: b, off: o, width: w }),
        (reg(), reg(), any::<i32>(), width())
            .prop_map(|(a, b, o, w)| Inst::St { rs: a, base: b, off: o, width: w }),
        (freg(), reg(), any::<i32>()).prop_map(|(a, b, o)| Inst::FLd { fd: a, base: b, off: o }),
        (freg(), reg(), any::<i32>()).prop_map(|(a, b, o)| Inst::FSt4 { fs: a, base: b, off: o }),
        (reg(), any::<i32>()).prop_map(|(b, o)| Inst::Prefetch { base: b, off: o }),
        (reg(), reg(), reg(), any::<i32>())
            .prop_map(|(a, b, p, o)| Inst::PLd64 { rd: a, base: b, pred: p, off: o }),
        (reg(), reg(), reg()).prop_map(|(d, s, l)| Inst::BCpy { dst: d, src: s, len: l }),
        any::<u32>().prop_map(|t| Inst::Jmp { target: t }),
        (cond(), reg(), reg(), any::<u32>())
            .prop_map(|(c, a, b, t)| Inst::Br { cond: c, rs1: a, rs2: b, target: t }),
        any::<u32>().prop_map(|t| Inst::Call { target: t }),
        reg().prop_map(|r| Inst::CallR { rs: r }),
        Just(Inst::Ret),
        hostfn().prop_map(|f| Inst::Host { func: f }),
        Just(Inst::Halt),
        Just(Inst::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode ∘ decode = identity over constructible instructions. (FLi
    /// NaN payloads compare by bits via the encoded word.)
    #[test]
    fn encode_decode_roundtrip(i in inst()) {
        let word = encode(i);
        let back = decode(word).expect("own encoding decodes");
        // Re-encoding must give the identical word even when NaN makes
        // `back != i` under PartialEq.
        prop_assert_eq!(encode(back), word);
        if let Inst::FLi { value, .. } = i {
            if !value.is_nan() {
                prop_assert_eq!(back, i);
            }
        } else {
            prop_assert_eq!(back, i);
        }
    }

    /// The decoder is total: arbitrary words either decode or error, never
    /// panic; successful decodes disassemble and re-encode stably.
    #[test]
    fn decoder_is_total(word in any::<u64>()) {
        if let Ok(i) = decode(word) {
            let _ = disassemble(&i);
            let w2 = encode(i);
            let i2 = decode(w2).expect("canonical re-encoding decodes");
            prop_assert_eq!(encode(i2), w2, "re-encoding is a fixpoint");
        }
    }

    /// Classification helpers never disagree with themselves.
    #[test]
    fn classification_consistency(i in inst()) {
        if i.memory_read_size().is_some() {
            prop_assert!(i.may_read_memory());
        }
        if i.memory_write_size().is_some() {
            prop_assert!(i.may_write_memory());
        }
        if i.is_prefetch() {
            prop_assert!(i.may_read_memory());
        }
        if i.is_call() {
            prop_assert!(i.may_write_memory(), "calls push the return address");
            prop_assert!(i.ends_block());
        }
        if i.is_ret() {
            prop_assert!(i.may_read_memory(), "rets pop the return address");
            prop_assert!(i.ends_block());
        }
    }
}
