//! Randomised tests over the binary encoding: every constructible
//! instruction round-trips through encode/decode, and the decoder is total
//! (never panics) over arbitrary 64-bit words.
//!
//! Formerly proptest-based; the workspace builds with zero external crates,
//! so these are now deterministic sweeps driven by the vendored
//! [`tq_isa::prng::Rng`]. The non-default `heavy-tests` feature multiplies
//! the iteration counts.

use tq_isa::prng::Rng;
use tq_isa::{decode, disassemble, encode, BrCond, FReg, HostFn, Inst, MemWidth, Reg};

fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 16
    } else {
        base
    }
}

fn reg(rng: &mut Rng) -> Reg {
    Reg(rng.index(32) as u8)
}

fn freg(rng: &mut Rng) -> FReg {
    FReg(rng.index(32) as u8)
}

fn width(rng: &mut Rng) -> MemWidth {
    [MemWidth::B1, MemWidth::B2, MemWidth::B4, MemWidth::B8][rng.index(4)]
}

fn cond(rng: &mut Rng) -> BrCond {
    [
        BrCond::Eq,
        BrCond::Ne,
        BrCond::Lt,
        BrCond::Ge,
        BrCond::Ltu,
        BrCond::Geu,
    ][rng.index(6)]
}

fn hostfn(rng: &mut Rng) -> HostFn {
    HostFn::from_code(rng.index(10) as u16).expect("codes 0..10 are valid")
}

fn imm32(rng: &mut Rng) -> i32 {
    rng.next_u32() as i32
}

fn inst(rng: &mut Rng) -> Inst {
    match rng.index(27) {
        0 => Inst::Add {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        1 => Inst::Sub {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        2 => Inst::Mul {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        3 => Inst::Div {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        4 => Inst::Sltu {
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        5 => Inst::AddI {
            rd: reg(rng),
            rs1: reg(rng),
            imm: imm32(rng),
        },
        6 => Inst::SraI {
            rd: reg(rng),
            rs1: reg(rng),
            imm: imm32(rng),
        },
        7 => Inst::Li {
            rd: reg(rng),
            imm: imm32(rng),
        },
        8 => Inst::OrHi {
            rd: reg(rng),
            imm: imm32(rng),
        },
        9 => Inst::FMul {
            fd: freg(rng),
            fs1: freg(rng),
            fs2: freg(rng),
        },
        10 => Inst::FSqrt {
            fd: freg(rng),
            fs: freg(rng),
        },
        11 => Inst::FLi {
            fd: freg(rng),
            value: f32::from_bits(rng.next_u32()),
        },
        12 => Inst::FLe {
            rd: reg(rng),
            fs1: freg(rng),
            fs2: freg(rng),
        },
        13 => Inst::Ld {
            rd: reg(rng),
            base: reg(rng),
            off: imm32(rng),
            width: width(rng),
        },
        14 => Inst::St {
            rs: reg(rng),
            base: reg(rng),
            off: imm32(rng),
            width: width(rng),
        },
        15 => Inst::FLd {
            fd: freg(rng),
            base: reg(rng),
            off: imm32(rng),
        },
        16 => Inst::FSt4 {
            fs: freg(rng),
            base: reg(rng),
            off: imm32(rng),
        },
        17 => Inst::Prefetch {
            base: reg(rng),
            off: imm32(rng),
        },
        18 => Inst::PLd64 {
            rd: reg(rng),
            base: reg(rng),
            pred: reg(rng),
            off: imm32(rng),
        },
        19 => Inst::BCpy {
            dst: reg(rng),
            src: reg(rng),
            len: reg(rng),
        },
        20 => Inst::Jmp {
            target: rng.next_u32(),
        },
        21 => Inst::Br {
            cond: cond(rng),
            rs1: reg(rng),
            rs2: reg(rng),
            target: rng.next_u32(),
        },
        22 => Inst::Call {
            target: rng.next_u32(),
        },
        23 => Inst::CallR { rs: reg(rng) },
        24 => Inst::Ret,
        25 => Inst::Host { func: hostfn(rng) },
        _ => {
            if rng.chance(0.5) {
                Inst::Halt
            } else {
                Inst::Nop
            }
        }
    }
}

/// encode ∘ decode = identity over constructible instructions. (FLi NaN
/// payloads compare by bits via the encoded word.)
#[test]
fn encode_decode_roundtrip() {
    let mut rng = Rng::new(0xA11C_E5ED);
    for _ in 0..cases(2048) {
        let i = inst(&mut rng);
        let word = encode(i);
        let back = decode(word).expect("own encoding decodes");
        // Re-encoding must give the identical word even when NaN makes
        // `back != i` under PartialEq.
        assert_eq!(encode(back), word, "unstable encoding for {i:?}");
        if let Inst::FLi { value, .. } = i {
            if !value.is_nan() {
                assert_eq!(back, i);
            }
        } else {
            assert_eq!(back, i);
        }
    }
}

/// The decoder is total: arbitrary words either decode or error, never
/// panic; successful decodes disassemble and re-encode stably.
#[test]
fn decoder_is_total() {
    let mut rng = Rng::new(0xDEC0_DE00);
    for n in 0..cases(8192) {
        // Mix raw random words with mutated valid encodings so the decode
        // success path gets real coverage, not just the error path.
        let word = if n % 3 == 0 {
            encode(inst(&mut rng)) ^ (1u64 << rng.index(64))
        } else {
            rng.next_u64()
        };
        if let Ok(i) = decode(word) {
            let _ = disassemble(&i);
            let w2 = encode(i);
            let i2 = decode(w2).expect("canonical re-encoding decodes");
            assert_eq!(encode(i2), w2, "re-encoding is a fixpoint");
        }
    }
}

/// Classification helpers never disagree with themselves.
#[test]
fn classification_consistency() {
    let mut rng = Rng::new(0xC1A5_51F1);
    for _ in 0..cases(2048) {
        let i = inst(&mut rng);
        if i.memory_read_size().is_some() {
            assert!(i.may_read_memory(), "{i:?}");
        }
        if i.memory_write_size().is_some() {
            assert!(i.may_write_memory(), "{i:?}");
        }
        if i.is_prefetch() {
            assert!(i.may_read_memory(), "{i:?}");
        }
        if i.is_call() {
            assert!(i.may_write_memory(), "calls push the return address");
            assert!(i.ends_block(), "{i:?}");
        }
        if i.is_ret() {
            assert!(i.may_read_memory(), "rets pop the return address");
            assert!(i.ends_block(), "{i:?}");
        }
    }
}
