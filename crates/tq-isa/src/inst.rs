//! The instruction set.
//!
//! Fixed-width RISC-style instructions. The set is deliberately shaped so
//! that everything Pin's instrumentation API can ask about an instruction has
//! a faithful counterpart here:
//!
//! * loads and stores of 1/2/4/8-byte integers and 4/8-byte floats — tQUAD's
//!   `IncreaseRead`/`IncreaseWrite` analysis routines receive the byte count;
//! * `Call`/`CallR` push the return address onto the stack and `Ret` pops it,
//!   so calls and returns are *memory* operations, as on x86;
//! * `Prefetch` is a memory-read-shaped hint — the paper's analysis routines
//!   "return immediately upon detection of a prefetch state";
//! * `PLd64`/`PSt64` are predicated memory operations — Pin's
//!   `INS_InsertPredicatedCall` only fires the analysis call when the
//!   predicate holds, and the VM reproduces that.

use crate::reg::{FReg, Reg};

/// Width of an integer memory access, in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemWidth {
    /// Access size in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// Comparison condition of a conditional branch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BrCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

impl BrCond {
    /// Evaluate the condition on two register values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => (a as i64) < (b as i64),
            BrCond::Ge => (a as i64) >= (b as i64),
            BrCond::Ltu => a < b,
            BrCond::Geu => a >= b,
        }
    }
}

/// Host-call functions (the VM's "OS interface").
///
/// The simulated application performs I/O through these, against an
/// in-memory file system — the reproduction of the paper's *off-line mode*
/// where the wfs application reads its audio from files.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum HostFn {
    /// Terminate the program; `A0` = exit code.
    Exit,
    /// Print the integer in `A0` to the VM console.
    PrintI64,
    /// Print the float in `FA0` to the VM console.
    PrintF64,
    /// Print the byte in `A0` as a character to the VM console.
    PrintChar,
    /// Open a file: `A0` = path pointer, `A1` = path length, `A2` = mode
    /// (0 read, 1 write/create). Returns fd in `A0`, or −1.
    FsOpen,
    /// Close fd in `A0`.
    FsClose,
    /// Read: `A0` = fd, `A1` = buffer pointer, `A2` = length. Returns bytes
    /// read. The copy into simulated memory is performed by the *host*, so
    /// it is invisible to instrumentation — exactly like a kernel-mode copy
    /// under Pin, which "can only capture user-level code".
    FsRead,
    /// Write: `A0` = fd, `A1` = buffer pointer, `A2` = length.
    FsWrite,
    /// File size of fd in `A0`.
    FsSize,
    /// Current instruction count (virtual clock) in `A0`.
    Icount,
}

impl HostFn {
    /// Encode as a 16-bit code.
    pub fn code(self) -> u16 {
        match self {
            HostFn::Exit => 0,
            HostFn::PrintI64 => 1,
            HostFn::PrintF64 => 2,
            HostFn::PrintChar => 3,
            HostFn::FsOpen => 4,
            HostFn::FsClose => 5,
            HostFn::FsRead => 6,
            HostFn::FsWrite => 7,
            HostFn::FsSize => 8,
            HostFn::Icount => 9,
        }
    }

    /// Decode from a 16-bit code.
    pub fn from_code(code: u16) -> Option<HostFn> {
        Some(match code {
            0 => HostFn::Exit,
            1 => HostFn::PrintI64,
            2 => HostFn::PrintF64,
            3 => HostFn::PrintChar,
            4 => HostFn::FsOpen,
            5 => HostFn::FsClose,
            6 => HostFn::FsRead,
            7 => HostFn::FsWrite,
            8 => HostFn::FsSize,
            9 => HostFn::Icount,
            _ => return None,
        })
    }
}

/// One machine instruction.
///
/// Branch, jump and call targets are absolute byte addresses in the text
/// segment (every instruction occupies [`crate::INST_BYTES`] bytes).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Inst {
    // ---- integer ALU, register-register ----
    /// `rd = rs1 + rs2` (wrapping).
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 - rs2` (wrapping).
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 * rs2` (wrapping).
    Mul { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 / rs2` (signed; division by zero yields 0, as on many DSPs).
    Div { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 % rs2` (signed; modulo zero yields 0).
    Rem { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 & rs2`.
    And { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 | rs2`.
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 ^ rs2`.
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 << (rs2 & 63)`.
    Shl { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 >> (rs2 & 63)` (logical).
    Shr { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic).
    Sra { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 <ₛ rs2) ? 1 : 0`.
    Slt { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 <ᵤ rs2) ? 1 : 0`.
    Sltu { rd: Reg, rs1: Reg, rs2: Reg },

    // ---- integer ALU, register-immediate ----
    /// `rd = rs1 + imm`.
    AddI { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 * imm`.
    MulI { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 & imm` (sign-extended immediate).
    AndI { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 | imm`.
    OrI { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 ^ imm`.
    XorI { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 << (imm & 63)`.
    ShlI { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 >> (imm & 63)` (logical).
    ShrI { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 >> (imm & 63)` (arithmetic).
    SraI { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = (rs1 <ₛ imm) ? 1 : 0`.
    SltI { rd: Reg, rs1: Reg, imm: i32 },

    // ---- constants and moves ----
    /// `rd = imm` (sign-extended to 64 bits).
    Li { rd: Reg, imm: i32 },
    /// `rd = (rd & 0xFFFF_FFFF) | (imm << 32)` — pairs with `Li` to build a
    /// full 64-bit constant.
    OrHi { rd: Reg, imm: i32 },
    /// `rd = rs`.
    Mv { rd: Reg, rs: Reg },

    // ---- floating point ----
    /// `fd = fs1 + fs2`.
    FAdd { fd: FReg, fs1: FReg, fs2: FReg },
    /// `fd = fs1 - fs2`.
    FSub { fd: FReg, fs1: FReg, fs2: FReg },
    /// `fd = fs1 * fs2`.
    FMul { fd: FReg, fs1: FReg, fs2: FReg },
    /// `fd = fs1 / fs2`.
    FDiv { fd: FReg, fs1: FReg, fs2: FReg },
    /// `fd = min(fs1, fs2)`.
    FMin { fd: FReg, fs1: FReg, fs2: FReg },
    /// `fd = max(fs1, fs2)`.
    FMax { fd: FReg, fs1: FReg, fs2: FReg },
    /// `fd = -fs`.
    FNeg { fd: FReg, fs: FReg },
    /// `fd = |fs|`.
    FAbs { fd: FReg, fs: FReg },
    /// `fd = √fs`.
    FSqrt { fd: FReg, fs: FReg },
    /// `fd = sin(fs)` — hardware transcendental, standing in for the math
    /// library the real application links against.
    FSin { fd: FReg, fs: FReg },
    /// `fd = cos(fs)`.
    FCos { fd: FReg, fs: FReg },
    /// `fd = fs`.
    FMv { fd: FReg, fs: FReg },
    /// `fd = value` (an `f32` immediate, widened to `f64`; full-precision
    /// constants are loaded from the data segment).
    FLi { fd: FReg, value: f32 },
    /// `fd = rs as f64` (signed conversion).
    ItoF { fd: FReg, rs: Reg },
    /// `rd = fs as i64` (truncating; saturates at the i64 range).
    FtoI { rd: Reg, fs: FReg },
    /// `rd = (fs1 < fs2) ? 1 : 0`.
    FLt { rd: Reg, fs1: FReg, fs2: FReg },
    /// `rd = (fs1 <= fs2) ? 1 : 0`.
    FLe { rd: Reg, fs1: FReg, fs2: FReg },
    /// `rd = (fs1 == fs2) ? 1 : 0`.
    FEq { rd: Reg, fs1: FReg, fs2: FReg },

    // ---- memory ----
    /// `rd = zero-extend(mem[rs1 + off])`.
    Ld {
        rd: Reg,
        base: Reg,
        off: i32,
        width: MemWidth,
    },
    /// `mem[rs1 + off] = low bytes of rs`.
    St {
        rs: Reg,
        base: Reg,
        off: i32,
        width: MemWidth,
    },
    /// `fd = f64 at mem[base + off]`.
    FLd { fd: FReg, base: Reg, off: i32 },
    /// `mem[base + off] = fd` (8 bytes).
    FSt { fs: FReg, base: Reg, off: i32 },
    /// `fd = f32 at mem[base + off]`, widened.
    FLd4 { fd: FReg, base: Reg, off: i32 },
    /// `mem[base + off] = fs as f32` (4 bytes).
    FSt4 { fs: FReg, base: Reg, off: i32 },
    /// Software prefetch of the cache line at `base + off`. Counts as a
    /// memory-read-shaped instruction with the prefetch flag set; tQUAD's
    /// analysis routines must ignore it.
    Prefetch { base: Reg, off: i32 },
    /// Predicated 8-byte load: executes (and touches memory) only when
    /// `pred != 0`.
    PLd64 {
        rd: Reg,
        base: Reg,
        pred: Reg,
        off: i32,
    },
    /// Predicated 8-byte store: executes only when `pred != 0`.
    PSt64 {
        rs: Reg,
        base: Reg,
        pred: Reg,
        off: i32,
    },
    /// Block copy (`rep movsb` analogue): copies `len` bytes (register
    /// value, capped by the VM) from `[src]` to `[dst]` as ONE instruction
    /// — a single memory-read event and a single memory-write event of
    /// `len` bytes each. This is how a `memcpy`-style kernel reaches the
    /// tens-of-bytes-per-instruction bandwidth the paper measures for
    /// `AudioIo_setFrames` (> 50 B/instr, Table IV).
    BCpy { dst: Reg, src: Reg, len: Reg },

    // ---- control flow ----
    /// Unconditional jump to the absolute byte address `target`.
    Jmp { target: u32 },
    /// Conditional branch.
    Br {
        cond: BrCond,
        rs1: Reg,
        rs2: Reg,
        target: u32,
    },
    /// Direct call: pushes the return address at `sp - 8`, decrements `sp`,
    /// jumps to `target`.
    Call { target: u32 },
    /// Indirect call through `rs`.
    CallR { rs: Reg },
    /// Return: pops the return address from `sp`, increments `sp`.
    Ret,

    // ---- system ----
    /// Host call (see [`HostFn`]).
    Host { func: HostFn },
    /// Stop the VM.
    Halt,
    /// No operation.
    Nop,
}

impl Inst {
    /// True when the instruction can read memory (size may be dynamic, as
    /// for [`Inst::BCpy`]); this is what instrumentation masks key on.
    pub fn may_read_memory(&self) -> bool {
        self.memory_read_size().is_some() || matches!(self, Inst::BCpy { .. })
    }

    /// True when the instruction can write memory.
    pub fn may_write_memory(&self) -> bool {
        self.memory_write_size().is_some() || matches!(self, Inst::BCpy { .. })
    }

    /// Bytes *read* from memory when this instruction executes (prefetches
    /// included — use [`Inst::is_prefetch`] to filter them, as tQUAD does).
    /// `None` for non-memory instructions and for [`Inst::BCpy`], whose
    /// size is a register value only known at run time.
    pub fn memory_read_size(&self) -> Option<u32> {
        match self {
            Inst::Ld { width, .. } => Some(width.bytes()),
            Inst::FLd { .. } => Some(8),
            Inst::FLd4 { .. } => Some(4),
            Inst::Prefetch { .. } => Some(8),
            Inst::PLd64 { .. } => Some(8),
            Inst::Ret => Some(8),
            _ => None,
        }
    }

    /// Bytes *written* to memory when this instruction executes.
    pub fn memory_write_size(&self) -> Option<u32> {
        match self {
            Inst::St { width, .. } => Some(width.bytes()),
            Inst::FSt { .. } => Some(8),
            Inst::FSt4 { .. } => Some(4),
            Inst::PSt64 { .. } => Some(8),
            Inst::Call { .. } | Inst::CallR { .. } => Some(8),
            _ => None,
        }
    }

    /// True for prefetch hints — the analysis routines of the paper "return
    /// immediately upon detection of a prefetch state".
    pub fn is_prefetch(&self) -> bool {
        matches!(self, Inst::Prefetch { .. })
    }

    /// The predicate register, for predicated instructions.
    pub fn predicate(&self) -> Option<Reg> {
        match self {
            Inst::PLd64 { pred, .. } | Inst::PSt64 { pred, .. } => Some(*pred),
            _ => None,
        }
    }

    /// True for `Call`/`CallR`.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. } | Inst::CallR { .. })
    }

    /// True for `Ret` — tQUAD "monitors instructions for the return from a
    /// function to maintain the integrity of the internal call stack".
    pub fn is_ret(&self) -> bool {
        matches!(self, Inst::Ret)
    }

    /// True if this instruction may redirect control flow (ends a basic
    /// block in the code cache).
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::Br { .. }
                | Inst::Call { .. }
                | Inst::CallR { .. }
                | Inst::Ret
                | Inst::Halt
                | Inst::Host { func: HostFn::Exit }
        )
    }

    /// Static branch/jump/call target, when there is one.
    pub fn static_target(&self) -> Option<u64> {
        match self {
            Inst::Jmp { target } | Inst::Br { target, .. } | Inst::Call { target } => {
                Some(*target as u64)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_classification() {
        let ld = Inst::Ld {
            rd: Reg(1),
            base: Reg(2),
            off: 16,
            width: MemWidth::B4,
        };
        assert_eq!(ld.memory_read_size(), Some(4));
        assert_eq!(ld.memory_write_size(), None);
        assert!(!ld.is_prefetch());

        let st = Inst::St {
            rs: Reg(1),
            base: Reg(2),
            off: -8,
            width: MemWidth::B8,
        };
        assert_eq!(st.memory_write_size(), Some(8));
        assert_eq!(st.memory_read_size(), None);

        let pf = Inst::Prefetch {
            base: Reg(2),
            off: 64,
        };
        assert!(pf.is_prefetch());
        assert_eq!(pf.memory_read_size(), Some(8));
    }

    #[test]
    fn block_copy_classification() {
        let b = Inst::BCpy {
            dst: Reg(1),
            src: Reg(2),
            len: Reg(3),
        };
        assert!(b.may_read_memory() && b.may_write_memory());
        assert_eq!(b.memory_read_size(), None, "size is dynamic");
        assert!(!b.ends_block());
    }

    #[test]
    fn call_ret_touch_the_stack() {
        assert_eq!(Inst::Call { target: 0x1000 }.memory_write_size(), Some(8));
        assert_eq!(Inst::CallR { rs: Reg(5) }.memory_write_size(), Some(8));
        assert_eq!(Inst::Ret.memory_read_size(), Some(8));
    }

    #[test]
    fn predicated_ops_expose_their_predicate() {
        let p = Inst::PLd64 {
            rd: Reg(1),
            base: Reg(2),
            pred: Reg(3),
            off: 0,
        };
        assert_eq!(p.predicate(), Some(Reg(3)));
        assert_eq!(Inst::Nop.predicate(), None);
    }

    #[test]
    fn block_enders() {
        assert!(Inst::Ret.ends_block());
        assert!(Inst::Jmp { target: 8 }.ends_block());
        assert!(Inst::Host { func: HostFn::Exit }.ends_block());
        assert!(!Inst::Host {
            func: HostFn::PrintI64
        }
        .ends_block());
        assert!(!Inst::Nop.ends_block());
    }

    #[test]
    fn branch_conditions() {
        assert!(BrCond::Lt.eval((-1i64) as u64, 0));
        assert!(!BrCond::Ltu.eval((-1i64) as u64, 0));
        assert!(BrCond::Geu.eval((-1i64) as u64, 0));
        assert!(BrCond::Eq.eval(7, 7));
        assert!(BrCond::Ne.eval(7, 8));
        assert!(BrCond::Ge.eval(3, 3));
    }

    #[test]
    fn hostfn_codes_roundtrip() {
        for code in 0..32u16 {
            if let Some(f) = HostFn::from_code(code) {
                assert_eq!(f.code(), code);
            }
        }
        assert_eq!(HostFn::from_code(999), None);
    }
}
