//! Superinstruction (fused-op) representation.
//!
//! The tq-vm hot loop pays a dispatch cost per *operation* it executes, so
//! the dominant instruction pairs and triples of the profiled kernels are
//! worth collapsing into single fused ops with one match arm each — the
//! classic threaded-interpreter "superinstruction" technique. This module
//! defines the architecture-level representation: which concrete instruction
//! windows fuse, and into what. The peephole matcher runs once per basic
//! block at decode time (instrumentation time, in Pin terms), so the cost of
//! matching is paid where the paper's architecture already pays its
//! once-per-block costs.
//!
//! Fusion never changes observable semantics. A fused op *is* its
//! constituent instructions executed in original order: the executing VM
//! advances the virtual clock once per constituent and fires exactly the
//! analysis events the unfused sequence would have fired, so fuel
//! accounting, `VmStats` and recorded traces stay byte-identical whether or
//! not fusion is enabled. The only thing that changes is how many dispatch
//! decisions the interpreter makes.
//!
//! The fused shapes mirror the patterns that dominate the compiled wfs /
//! imgproc kernels and the memory-heavy microbenchmarks: address-compute +
//! load, load + op, op + store, the full load-modify-store triple, and the
//! loop-closing induction step + compare-and-branch. (`Br` itself already
//! fuses compare and branch architecturally; [`Fused::IncBr`] additionally
//! absorbs the preceding induction update.)

use crate::inst::{BrCond, Inst, MemWidth};
use crate::reg::{FReg, Reg};

/// A superinstruction: two or three adjacent [`Inst`]s fused into one
/// dispatch unit. Field prefixes name the constituent: `a_*` the leading
/// `AddI`, `o_*` the middle op, `s_*` the trailing store.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Fused {
    /// `AddI a_rd, a_rs1, a_imm` ; `Ld rd, [a_rd + off]` — address compute
    /// feeding an integer load.
    AddrLd {
        /// Destination of the address compute (the load's base register).
        a_rd: Reg,
        /// Source of the address compute.
        a_rs1: Reg,
        /// Address-compute immediate.
        a_imm: i32,
        /// Load destination.
        rd: Reg,
        /// Load displacement.
        off: i32,
        /// Load width.
        width: MemWidth,
    },
    /// `AddI a_rd, a_rs1, a_imm` ; `FLd fd, [a_rd + off]` — address compute
    /// feeding a float load (the wfs kernels are float-heavy).
    AddrFLd {
        /// Destination of the address compute (the load's base register).
        a_rd: Reg,
        /// Source of the address compute.
        a_rs1: Reg,
        /// Address-compute immediate.
        a_imm: i32,
        /// Load destination.
        fd: FReg,
        /// Load displacement.
        off: i32,
    },
    /// `Ld rd, [base + off]` ; `AddI o_rd, rd, o_imm` — load feeding an
    /// immediate op.
    LdOp {
        /// Load destination (consumed by the op).
        rd: Reg,
        /// Load base register.
        base: Reg,
        /// Load displacement.
        off: i32,
        /// Load width.
        width: MemWidth,
        /// Op destination.
        o_rd: Reg,
        /// Op immediate.
        o_imm: i32,
    },
    /// `AddI a_rd, a_rs1, a_imm` ; `St a_rd, [base + off]` — computed value
    /// stored immediately.
    OpSt {
        /// Op destination (the stored register).
        a_rd: Reg,
        /// Op source.
        a_rs1: Reg,
        /// Op immediate.
        a_imm: i32,
        /// Store base register.
        base: Reg,
        /// Store displacement.
        off: i32,
        /// Store width.
        width: MemWidth,
    },
    /// `Ld rd, [base + off]` ; `AddI o_rd, rd, o_imm` ;
    /// `St o_rd, [s_base + s_off]` — the read-modify-write triple that forms
    /// the body of in-place update loops.
    LdOpSt {
        /// Load destination (consumed by the op).
        rd: Reg,
        /// Load base register.
        base: Reg,
        /// Load displacement.
        off: i32,
        /// Load width.
        width: MemWidth,
        /// Op destination (the stored register).
        o_rd: Reg,
        /// Op immediate.
        o_imm: i32,
        /// Store base register.
        s_base: Reg,
        /// Store displacement.
        s_off: i32,
        /// Store width.
        s_width: MemWidth,
    },
    /// `AddI a_rd, a_rs1, a_imm` ; `Br cond, rs1, rs2, target` — loop
    /// induction step + compare-and-branch. Ends a basic block, like the
    /// `Br` it absorbs.
    IncBr {
        /// Induction-step destination.
        a_rd: Reg,
        /// Induction-step source.
        a_rs1: Reg,
        /// Induction-step immediate.
        a_imm: i32,
        /// Branch condition.
        cond: BrCond,
        /// First branch operand.
        rs1: Reg,
        /// Second branch operand.
        rs2: Reg,
        /// Branch target (absolute byte address).
        target: u32,
    },
}

impl Fused {
    /// Number of constituent instructions (2 or 3). The virtual clock
    /// advances by this much when the fused op executes.
    pub fn arity(&self) -> usize {
        match self {
            Fused::LdOpSt { .. } => 3,
            _ => 2,
        }
    }

    /// True when the fused op absorbs a block-ending branch (its last
    /// constituent redirects control flow).
    pub fn ends_block(&self) -> bool {
        matches!(self, Fused::IncBr { .. })
    }
}

impl std::fmt::Display for Fused {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Fused::AddrLd {
                a_rd,
                a_rs1,
                a_imm,
                rd,
                off,
                width,
            } => write!(
                f,
                "addr.ld r{}, r{}, {a_imm} ; r{}, {off}({}B)",
                a_rd.0,
                a_rs1.0,
                rd.0,
                width.bytes()
            ),
            Fused::AddrFLd {
                a_rd,
                a_rs1,
                a_imm,
                fd,
                off,
            } => write!(
                f,
                "addr.fld r{}, r{}, {a_imm} ; f{}, {off}",
                a_rd.0, a_rs1.0, fd.0
            ),
            Fused::LdOp {
                rd,
                base,
                off,
                width,
                o_rd,
                o_imm,
            } => write!(
                f,
                "ld.op r{}, {off}(r{})({}B) ; r{} += {o_imm}",
                rd.0,
                base.0,
                width.bytes(),
                o_rd.0
            ),
            Fused::OpSt {
                a_rd,
                a_rs1,
                a_imm,
                base,
                off,
                width,
            } => write!(
                f,
                "op.st r{} = r{} + {a_imm} ; {off}(r{})({}B)",
                a_rd.0,
                a_rs1.0,
                base.0,
                width.bytes()
            ),
            Fused::LdOpSt {
                rd,
                base,
                off,
                o_imm,
                s_base,
                s_off,
                ..
            } => write!(
                f,
                "ld.op.st r{}, {off}(r{}) ; += {o_imm} ; {s_off}(r{})",
                rd.0, base.0, s_base.0
            ),
            Fused::IncBr {
                a_rd,
                a_rs1,
                a_imm,
                cond,
                rs1,
                rs2,
                target,
            } => write!(
                f,
                "inc.br r{} = r{} + {a_imm} ; {cond:?} r{}, r{} -> {target:#x}",
                a_rd.0, a_rs1.0, rs1.0, rs2.0
            ),
        }
    }
}

/// Try to fuse the three adjacent instructions `a ; b ; c`.
pub fn fuse_triple(a: &Inst, b: &Inst, c: &Inst) -> Option<Fused> {
    if let (
        Inst::Ld {
            rd,
            base,
            off,
            width,
        },
        Inst::AddI {
            rd: o_rd,
            rs1,
            imm: o_imm,
        },
        Inst::St {
            rs,
            base: s_base,
            off: s_off,
            width: s_width,
        },
    ) = (*a, *b, *c)
    {
        if rs1 == rd && rs == o_rd {
            return Some(Fused::LdOpSt {
                rd,
                base,
                off,
                width,
                o_rd,
                o_imm,
                s_base,
                s_off,
                s_width,
            });
        }
    }
    None
}

/// Try to fuse the two adjacent instructions `a ; b`.
pub fn fuse_pair(a: &Inst, b: &Inst) -> Option<Fused> {
    match (*a, *b) {
        (
            Inst::AddI { rd, rs1, imm },
            Inst::Ld {
                rd: l_rd,
                base,
                off,
                width,
            },
        ) if base == rd => Some(Fused::AddrLd {
            a_rd: rd,
            a_rs1: rs1,
            a_imm: imm,
            rd: l_rd,
            off,
            width,
        }),
        (Inst::AddI { rd, rs1, imm }, Inst::FLd { fd, base, off }) if base == rd => {
            Some(Fused::AddrFLd {
                a_rd: rd,
                a_rs1: rs1,
                a_imm: imm,
                fd,
                off,
            })
        }
        (
            Inst::Ld {
                rd,
                base,
                off,
                width,
            },
            Inst::AddI {
                rd: o_rd,
                rs1,
                imm: o_imm,
            },
        ) if rs1 == rd => Some(Fused::LdOp {
            rd,
            base,
            off,
            width,
            o_rd,
            o_imm,
        }),
        (
            Inst::AddI { rd, rs1, imm },
            Inst::St {
                rs,
                base,
                off,
                width,
            },
        ) if rs == rd => Some(Fused::OpSt {
            a_rd: rd,
            a_rs1: rs1,
            a_imm: imm,
            base,
            off,
            width,
        }),
        (
            Inst::AddI { rd, rs1, imm },
            Inst::Br {
                cond,
                rs1: b_rs1,
                rs2: b_rs2,
                target,
            },
        ) => Some(Fused::IncBr {
            a_rd: rd,
            a_rs1: rs1,
            a_imm: imm,
            cond,
            rs1: b_rs1,
            rs2: b_rs2,
            target,
        }),
        _ => None,
    }
}

/// Greedy peephole step: fuse the longest match at the start of `window`
/// (triples before pairs) and report how many instructions it consumed.
/// `None` means the first instruction stays a plain single op.
pub fn fuse_window(window: &[Inst]) -> Option<(Fused, usize)> {
    if window.len() >= 3 {
        if let Some(f) = fuse_triple(&window[0], &window[1], &window[2]) {
            return Some((f, 3));
        }
    }
    if window.len() >= 2 {
        if let Some(f) = fuse_pair(&window[0], &window[1]) {
            return Some((f, 2));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addi(rd: u8, rs1: u8, imm: i32) -> Inst {
        Inst::AddI {
            rd: Reg(rd),
            rs1: Reg(rs1),
            imm,
        }
    }

    fn ld(rd: u8, base: u8, off: i32) -> Inst {
        Inst::Ld {
            rd: Reg(rd),
            base: Reg(base),
            off,
            width: MemWidth::B8,
        }
    }

    fn st(rs: u8, base: u8, off: i32) -> Inst {
        Inst::St {
            rs: Reg(rs),
            base: Reg(base),
            off,
            width: MemWidth::B8,
        }
    }

    #[test]
    fn pairs_fuse_when_linked() {
        // Address compute feeding the load's base.
        assert!(matches!(
            fuse_pair(&addi(5, 6, 8), &ld(3, 5, 0)),
            Some(Fused::AddrLd { .. })
        ));
        // Unrelated base register: no fusion.
        assert!(fuse_pair(&addi(5, 6, 8), &ld(3, 7, 0)).is_none());

        // Load feeding the op.
        assert!(matches!(
            fuse_pair(&ld(3, 5, 0), &addi(3, 3, 1)),
            Some(Fused::LdOp { .. })
        ));
        assert!(fuse_pair(&ld(3, 5, 0), &addi(4, 9, 1)).is_none());

        // Computed value stored.
        assert!(matches!(
            fuse_pair(&addi(3, 3, 1), &st(3, 5, 0)),
            Some(Fused::OpSt { .. })
        ));
        assert!(fuse_pair(&addi(3, 3, 1), &st(4, 5, 0)).is_none());

        // Induction step + branch always pairs.
        let br = Inst::Br {
            cond: BrCond::Lt,
            rs1: Reg(1),
            rs2: Reg(2),
            target: 0x1000,
        };
        let f = fuse_pair(&addi(1, 1, 1), &br).unwrap();
        assert!(matches!(f, Fused::IncBr { .. }));
        assert!(f.ends_block());
        assert_eq!(f.arity(), 2);
    }

    #[test]
    fn float_addr_load_fuses() {
        let fld = Inst::FLd {
            fd: FReg(2),
            base: Reg(5),
            off: 16,
        };
        assert!(matches!(
            fuse_pair(&addi(5, 6, 8), &fld),
            Some(Fused::AddrFLd { .. })
        ));
    }

    #[test]
    fn triple_wins_over_pair() {
        // ld r3 ; addi r3 += 1 ; st r3 — the in-place update triple. The
        // window matcher must take all three, not stop at the LdOp pair.
        let w = [ld(3, 5, 0), addi(3, 3, 1), st(3, 5, 0)];
        let (f, n) = fuse_window(&w).unwrap();
        assert_eq!(n, 3);
        assert!(matches!(f, Fused::LdOpSt { .. }));
        assert_eq!(f.arity(), 3);
        assert!(!f.ends_block());
    }

    #[test]
    fn triple_requires_both_links() {
        // Store of an unrelated register: the triple must not match, but
        // the leading LdOp pair still does.
        let w = [ld(3, 5, 0), addi(3, 3, 1), st(9, 5, 0)];
        let (f, n) = fuse_window(&w).unwrap();
        assert_eq!(n, 2);
        assert!(matches!(f, Fused::LdOp { .. }));
    }

    #[test]
    fn unfusable_window_returns_none() {
        let w = [Inst::Nop, ld(3, 5, 0), Inst::Halt];
        assert!(fuse_window(&w).is_none());
        assert!(fuse_window(&w[..1]).is_none());
        assert!(fuse_window(&[]).is_none());
    }

    #[test]
    fn display_is_stable() {
        let f = fuse_pair(&addi(5, 6, 8), &ld(3, 5, 0)).unwrap();
        assert_eq!(format!("{f}"), "addr.ld r5, r6, 8 ; r3, 0(8B)");
    }
}
