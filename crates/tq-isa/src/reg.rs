//! Register files and calling convention.

use std::fmt;

/// An integer register (`r0`–`r31`), 64 bits wide.
///
/// `r0` is *not* hardwired to zero; all 32 registers are general purpose,
/// but the calling convention ([`abi`]) reserves the top of the file for the
/// stack pointer and assembler temporaries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// A floating point register (`f0`–`f31`), holding an `f64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

impl Reg {
    /// Number of integer registers.
    pub const COUNT: usize = 32;

    /// Index into a register file array.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl FReg {
    /// Number of floating point registers.
    pub const COUNT: usize = 32;

    /// Index into a register file array.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == abi::SP {
            write!(f, "sp")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The calling convention shared by the kernel compiler, the runtime library
/// and hand-written assembly.
///
/// * integer arguments in `A0`–`A5`, result in `A0`;
/// * float arguments in `FA0`–`FA5`, result in `FA0`;
/// * `SP` is the stack pointer; the stack grows *down* and `Call` pushes the
///   return address (8 bytes) at `sp - 8` before jumping, `Ret` pops it —
///   exactly the stack traffic an x86 `call`/`ret` pair generates, which is
///   what makes call-heavy kernels visible to a memory profiler;
/// * `T0`–`T9` are scratch registers owned by the code generator (caller
///   saved; in generated code every live value is reloaded from the frame,
///   so nothing is preserved across calls);
/// * `FP` holds the frame pointer inside compiled routines.
pub mod abi {
    use super::{FReg, Reg};

    /// First integer argument / integer return value.
    pub const A0: Reg = Reg(1);
    /// Second integer argument.
    pub const A1: Reg = Reg(2);
    /// Third integer argument.
    pub const A2: Reg = Reg(3);
    /// Fourth integer argument.
    pub const A3: Reg = Reg(4);
    /// Fifth integer argument.
    pub const A4: Reg = Reg(5);
    /// Sixth integer argument.
    pub const A5: Reg = Reg(6);

    /// All integer argument registers, in order.
    pub const INT_ARGS: [Reg; 6] = [A0, A1, A2, A3, A4, A5];

    /// First float argument / float return value.
    pub const FA0: FReg = FReg(1);
    /// All float argument registers, in order.
    pub const FLOAT_ARGS: [FReg; 6] = [FReg(1), FReg(2), FReg(3), FReg(4), FReg(5), FReg(6)];

    /// Frame pointer used by compiled routines.
    pub const FP: Reg = Reg(28);
    /// Stack pointer. The VM exposes its value to analysis routines, which is
    /// how tQUAD classifies stack-area accesses (the paper's
    /// `REG_STACK_PTR` argument).
    pub const SP: Reg = Reg(29);

    /// Scratch registers available to the code generator.
    pub const TEMPS: [Reg; 10] = [
        Reg(8),
        Reg(9),
        Reg(10),
        Reg(11),
        Reg(12),
        Reg(13),
        Reg(14),
        Reg(15),
        Reg(16),
        Reg(17),
    ];

    /// Scratch float registers available to the code generator.
    pub const FTEMPS: [FReg; 10] = [
        FReg(8),
        FReg(9),
        FReg(10),
        FReg(11),
        FReg(12),
        FReg(13),
        FReg(14),
        FReg(15),
        FReg(16),
        FReg(17),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(abi::SP.to_string(), "sp");
        assert_eq!(FReg(7).to_string(), "f7");
    }

    #[test]
    fn abi_registers_are_distinct() {
        let mut all: Vec<Reg> = abi::INT_ARGS.to_vec();
        all.extend(abi::TEMPS);
        all.push(abi::SP);
        all.push(abi::FP);
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "ABI register roles must not overlap");
    }

    #[test]
    fn indices_in_range() {
        for r in abi::INT_ARGS.iter().chain(abi::TEMPS.iter()) {
            assert!(r.idx() < Reg::COUNT);
        }
        for f in abi::FLOAT_ARGS.iter().chain(abi::FTEMPS.iter()) {
            assert!(f.idx() < FReg::COUNT);
        }
    }
}
