//! Disassembler — renders instructions in a readable assembly syntax, used
//! by the CLI's `disasm` subcommand and by error reports from the VM.

use crate::inst::{BrCond, Inst, MemWidth};

fn cond_mnemonic(c: BrCond) -> &'static str {
    match c {
        BrCond::Eq => "beq",
        BrCond::Ne => "bne",
        BrCond::Lt => "blt",
        BrCond::Ge => "bge",
        BrCond::Ltu => "bltu",
        BrCond::Geu => "bgeu",
    }
}

fn width_suffix(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B1 => "1",
        MemWidth::B2 => "2",
        MemWidth::B4 => "4",
        MemWidth::B8 => "8",
    }
}

/// Render one instruction.
pub fn disassemble(inst: &Inst) -> String {
    use Inst::*;
    match inst {
        Add { rd, rs1, rs2 } => format!("add {rd}, {rs1}, {rs2}"),
        Sub { rd, rs1, rs2 } => format!("sub {rd}, {rs1}, {rs2}"),
        Mul { rd, rs1, rs2 } => format!("mul {rd}, {rs1}, {rs2}"),
        Div { rd, rs1, rs2 } => format!("div {rd}, {rs1}, {rs2}"),
        Rem { rd, rs1, rs2 } => format!("rem {rd}, {rs1}, {rs2}"),
        And { rd, rs1, rs2 } => format!("and {rd}, {rs1}, {rs2}"),
        Or { rd, rs1, rs2 } => format!("or {rd}, {rs1}, {rs2}"),
        Xor { rd, rs1, rs2 } => format!("xor {rd}, {rs1}, {rs2}"),
        Shl { rd, rs1, rs2 } => format!("shl {rd}, {rs1}, {rs2}"),
        Shr { rd, rs1, rs2 } => format!("shr {rd}, {rs1}, {rs2}"),
        Sra { rd, rs1, rs2 } => format!("sra {rd}, {rs1}, {rs2}"),
        Slt { rd, rs1, rs2 } => format!("slt {rd}, {rs1}, {rs2}"),
        Sltu { rd, rs1, rs2 } => format!("sltu {rd}, {rs1}, {rs2}"),
        AddI { rd, rs1, imm } => format!("addi {rd}, {rs1}, {imm}"),
        MulI { rd, rs1, imm } => format!("muli {rd}, {rs1}, {imm}"),
        AndI { rd, rs1, imm } => format!("andi {rd}, {rs1}, {imm:#x}"),
        OrI { rd, rs1, imm } => format!("ori {rd}, {rs1}, {imm:#x}"),
        XorI { rd, rs1, imm } => format!("xori {rd}, {rs1}, {imm:#x}"),
        ShlI { rd, rs1, imm } => format!("shli {rd}, {rs1}, {imm}"),
        ShrI { rd, rs1, imm } => format!("shri {rd}, {rs1}, {imm}"),
        SraI { rd, rs1, imm } => format!("srai {rd}, {rs1}, {imm}"),
        SltI { rd, rs1, imm } => format!("slti {rd}, {rs1}, {imm}"),
        Li { rd, imm } => format!("li {rd}, {imm}"),
        OrHi { rd, imm } => format!("orhi {rd}, {imm:#x}"),
        Mv { rd, rs } => format!("mv {rd}, {rs}"),
        FAdd { fd, fs1, fs2 } => format!("fadd {fd}, {fs1}, {fs2}"),
        FSub { fd, fs1, fs2 } => format!("fsub {fd}, {fs1}, {fs2}"),
        FMul { fd, fs1, fs2 } => format!("fmul {fd}, {fs1}, {fs2}"),
        FDiv { fd, fs1, fs2 } => format!("fdiv {fd}, {fs1}, {fs2}"),
        FMin { fd, fs1, fs2 } => format!("fmin {fd}, {fs1}, {fs2}"),
        FMax { fd, fs1, fs2 } => format!("fmax {fd}, {fs1}, {fs2}"),
        FNeg { fd, fs } => format!("fneg {fd}, {fs}"),
        FAbs { fd, fs } => format!("fabs {fd}, {fs}"),
        FSqrt { fd, fs } => format!("fsqrt {fd}, {fs}"),
        FSin { fd, fs } => format!("fsin {fd}, {fs}"),
        FCos { fd, fs } => format!("fcos {fd}, {fs}"),
        FMv { fd, fs } => format!("fmv {fd}, {fs}"),
        FLi { fd, value } => format!("fli {fd}, {value}"),
        ItoF { fd, rs } => format!("itof {fd}, {rs}"),
        FtoI { rd, fs } => format!("ftoi {rd}, {fs}"),
        FLt { rd, fs1, fs2 } => format!("flt {rd}, {fs1}, {fs2}"),
        FLe { rd, fs1, fs2 } => format!("fle {rd}, {fs1}, {fs2}"),
        FEq { rd, fs1, fs2 } => format!("feq {rd}, {fs1}, {fs2}"),
        Ld {
            rd,
            base,
            off,
            width,
        } => format!("ld{} {rd}, {off}({base})", width_suffix(*width)),
        St {
            rs,
            base,
            off,
            width,
        } => format!("st{} {rs}, {off}({base})", width_suffix(*width)),
        FLd { fd, base, off } => format!("fld {fd}, {off}({base})"),
        FSt { fs, base, off } => format!("fst {fs}, {off}({base})"),
        FLd4 { fd, base, off } => format!("fld4 {fd}, {off}({base})"),
        FSt4 { fs, base, off } => format!("fst4 {fs}, {off}({base})"),
        Prefetch { base, off } => format!("prefetch {off}({base})"),
        PLd64 {
            rd,
            base,
            pred,
            off,
        } => format!("pld8 {rd}, {off}({base}), if {pred}"),
        PSt64 {
            rs,
            base,
            pred,
            off,
        } => format!("pst8 {rs}, {off}({base}), if {pred}"),
        BCpy { dst, src, len } => format!("bcpy [{dst}], [{src}], {len}"),
        Jmp { target } => format!("jmp {target:#x}"),
        Br {
            cond,
            rs1,
            rs2,
            target,
        } => {
            format!("{} {rs1}, {rs2}, {target:#x}", cond_mnemonic(*cond))
        }
        Call { target } => format!("call {target:#x}"),
        CallR { rs } => format!("callr {rs}"),
        Ret => "ret".to_string(),
        Host { func } => format!("host {func:?}"),
        Halt => "halt".to_string(),
        Nop => "nop".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, Reg};

    #[test]
    fn renders_representative_forms() {
        assert_eq!(
            disassemble(&Inst::Add {
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3)
            }),
            "add r1, r2, r3"
        );
        assert_eq!(
            disassemble(&Inst::Ld {
                rd: Reg(1),
                base: Reg(29),
                off: -16,
                width: MemWidth::B8
            }),
            "ld8 r1, -16(sp)"
        );
        assert_eq!(
            disassemble(&Inst::Br {
                cond: BrCond::Ne,
                rs1: Reg(1),
                rs2: Reg(2),
                target: 0x10
            }),
            "bne r1, r2, 0x10"
        );
        assert_eq!(
            disassemble(&Inst::FMul {
                fd: FReg(1),
                fs1: FReg(2),
                fs2: FReg(3)
            }),
            "fmul f1, f2, f3"
        );
        assert_eq!(disassemble(&Inst::Ret), "ret");
    }

    /// Every decodable word must disassemble without panicking — fuzz the
    /// opcode space.
    #[test]
    fn disasm_total_over_decodable_words() {
        for op in 0u8..=0xFF {
            for fields in [0u64, 0x0102_0300, 0x1D1D_1D00] {
                let word = (op as u64) | fields | (0x10u64 << 32);
                if let Ok(inst) = crate::decode(word) {
                    let s = disassemble(&inst);
                    assert!(!s.is_empty());
                }
            }
        }
    }
}
