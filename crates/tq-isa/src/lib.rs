//! # tq-isa — the instruction set of the tQUAD reproduction VM
//!
//! The original tQUAD tool ([Ostadzadeh et al., ICPP 2010]) is built on the
//! Intel Pin dynamic binary instrumentation framework and profiles unmodified
//! x86 binaries. Rust has no mature DBI framework bindings, so this
//! reproduction substitutes a self-contained virtual instruction set
//! architecture: a fixed-width, 64-bit RISC-style ISA rich enough to express
//! the *hArtes wfs* case-study application with realistic memory behaviour —
//! loads and stores of every width, stack-relative addressing, calls and
//! returns that spill the return address to the stack, prefetch hints and
//! predicated memory operations (the features Pin's `INS_*` API exposes and
//! tQUAD's instrumentation logic depends on).
//!
//! This crate defines:
//!
//! * [`Reg`]/[`FReg`] — the integer and floating point register files and the
//!   calling convention ([`abi`]);
//! * [`Inst`] — the instruction set, with the classification queries a DBI
//!   framework needs (`is_memory_read`, `memory_write_size`, `is_call`, …);
//! * [`encode()`]/[`decode()`] — the fixed 8-byte binary encoding used to store
//!   text sections in images (round-trip tested);
//! * [`Asm`] — a small assembler with label resolution and routine (symbol)
//!   tracking;
//! * [`Image`], [`Program`], [`Routine`] — binary containers consumed by the
//!   VM loader, mirroring Pin's image/routine object model.

pub mod asm;
pub mod disasm;
pub mod encode;
pub mod fuse;
pub mod image;
pub mod inst;
pub mod prng;
pub mod reg;

pub use asm::{Asm, AsmError};
pub use disasm::disassemble;
pub use encode::{decode, encode, DecodeError};
pub use fuse::{fuse_pair, fuse_triple, fuse_window, Fused};
pub use image::{Image, ImageBuilder, Program, Routine, RoutineId};
pub use inst::{BrCond, HostFn, Inst, MemWidth};
pub use reg::{abi, FReg, Reg};

/// Size of one encoded instruction in bytes. The program counter advances by
/// this amount; branch and call targets are byte addresses.
pub const INST_BYTES: u64 = 8;
