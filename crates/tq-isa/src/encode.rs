//! Fixed-width binary encoding.
//!
//! Every instruction encodes to exactly 8 bytes, little-endian:
//!
//! ```text
//! byte 0   opcode
//! byte 1   field a (register / branch condition)
//! byte 2   field b (register)
//! byte 3   field c (register)
//! byte 4-7 imm (i32; also carries branch targets, f32 immediates and
//!          host-call codes)
//! ```
//!
//! Text sections of [`crate::Image`]s store encoded words; the VM's code
//! cache decodes them once per basic block — the analogue of Pin's JIT
//! reading x86 bytes out of the application image.

use crate::inst::{BrCond, HostFn, Inst, MemWidth};
use crate::reg::{FReg, Reg};

/// Error produced when decoding an invalid instruction word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The opcode byte that could not be decoded.
    pub opcode: u8,
    /// The full instruction word.
    pub word: u64,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid instruction word {:#018x} (opcode {:#04x})",
            self.word, self.opcode
        )
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const ADD: u8 = 0x01;
    pub const SUB: u8 = 0x02;
    pub const MUL: u8 = 0x03;
    pub const DIV: u8 = 0x04;
    pub const REM: u8 = 0x05;
    pub const AND: u8 = 0x06;
    pub const OR: u8 = 0x07;
    pub const XOR: u8 = 0x08;
    pub const SHL: u8 = 0x09;
    pub const SHR: u8 = 0x0A;
    pub const SRA: u8 = 0x0B;
    pub const SLT: u8 = 0x0C;
    pub const SLTU: u8 = 0x0D;

    pub const ADDI: u8 = 0x10;
    pub const MULI: u8 = 0x11;
    pub const ANDI: u8 = 0x12;
    pub const ORI: u8 = 0x13;
    pub const XORI: u8 = 0x14;
    pub const SHLI: u8 = 0x15;
    pub const SHRI: u8 = 0x16;
    pub const SRAI: u8 = 0x17;
    pub const SLTI: u8 = 0x18;

    pub const LI: u8 = 0x20;
    pub const ORHI: u8 = 0x21;
    pub const MV: u8 = 0x22;

    pub const FADD: u8 = 0x30;
    pub const FSUB: u8 = 0x31;
    pub const FMUL: u8 = 0x32;
    pub const FDIV: u8 = 0x33;
    pub const FMIN: u8 = 0x34;
    pub const FMAX: u8 = 0x35;
    pub const FNEG: u8 = 0x36;
    pub const FABS: u8 = 0x37;
    pub const FSQRT: u8 = 0x38;
    pub const FSIN: u8 = 0x39;
    pub const FCOS: u8 = 0x3A;
    pub const FMV: u8 = 0x3B;
    pub const FLI: u8 = 0x3C;
    pub const ITOF: u8 = 0x3D;
    pub const FTOI: u8 = 0x3E;
    pub const FLT: u8 = 0x3F;
    pub const FLE: u8 = 0x40;
    pub const FEQ: u8 = 0x41;

    pub const LD1: u8 = 0x50;
    pub const LD2: u8 = 0x51;
    pub const LD4: u8 = 0x52;
    pub const LD8: u8 = 0x53;
    pub const ST1: u8 = 0x54;
    pub const ST2: u8 = 0x55;
    pub const ST4: u8 = 0x56;
    pub const ST8: u8 = 0x57;
    pub const FLD: u8 = 0x58;
    pub const FST: u8 = 0x59;
    pub const FLD4: u8 = 0x5A;
    pub const FST4: u8 = 0x5B;
    pub const PREFETCH: u8 = 0x5C;
    pub const PLD64: u8 = 0x5D;
    pub const PST64: u8 = 0x5E;
    pub const BCPY: u8 = 0x5F;

    pub const JMP: u8 = 0x70;
    pub const BR: u8 = 0x71;
    pub const CALL: u8 = 0x72;
    pub const CALLR: u8 = 0x73;
    pub const RET: u8 = 0x74;

    pub const HOST: u8 = 0x80;
    pub const HALT: u8 = 0x81;
    pub const NOP: u8 = 0x82;
}

#[inline]
fn pack(opcode: u8, a: u8, b: u8, c: u8, imm: i32) -> u64 {
    (opcode as u64)
        | ((a as u64) << 8)
        | ((b as u64) << 16)
        | ((c as u64) << 24)
        | (((imm as u32) as u64) << 32)
}

#[inline]
fn cond_code(c: BrCond) -> u8 {
    match c {
        BrCond::Eq => 0,
        BrCond::Ne => 1,
        BrCond::Lt => 2,
        BrCond::Ge => 3,
        BrCond::Ltu => 4,
        BrCond::Geu => 5,
    }
}

#[inline]
fn cond_from(code: u8) -> Option<BrCond> {
    Some(match code {
        0 => BrCond::Eq,
        1 => BrCond::Ne,
        2 => BrCond::Lt,
        3 => BrCond::Ge,
        4 => BrCond::Ltu,
        5 => BrCond::Geu,
        _ => return None,
    })
}

/// Encode one instruction into its 8-byte word.
pub fn encode(inst: Inst) -> u64 {
    use Inst::*;
    match inst {
        Add { rd, rs1, rs2 } => pack(op::ADD, rd.0, rs1.0, rs2.0, 0),
        Sub { rd, rs1, rs2 } => pack(op::SUB, rd.0, rs1.0, rs2.0, 0),
        Mul { rd, rs1, rs2 } => pack(op::MUL, rd.0, rs1.0, rs2.0, 0),
        Div { rd, rs1, rs2 } => pack(op::DIV, rd.0, rs1.0, rs2.0, 0),
        Rem { rd, rs1, rs2 } => pack(op::REM, rd.0, rs1.0, rs2.0, 0),
        And { rd, rs1, rs2 } => pack(op::AND, rd.0, rs1.0, rs2.0, 0),
        Or { rd, rs1, rs2 } => pack(op::OR, rd.0, rs1.0, rs2.0, 0),
        Xor { rd, rs1, rs2 } => pack(op::XOR, rd.0, rs1.0, rs2.0, 0),
        Shl { rd, rs1, rs2 } => pack(op::SHL, rd.0, rs1.0, rs2.0, 0),
        Shr { rd, rs1, rs2 } => pack(op::SHR, rd.0, rs1.0, rs2.0, 0),
        Sra { rd, rs1, rs2 } => pack(op::SRA, rd.0, rs1.0, rs2.0, 0),
        Slt { rd, rs1, rs2 } => pack(op::SLT, rd.0, rs1.0, rs2.0, 0),
        Sltu { rd, rs1, rs2 } => pack(op::SLTU, rd.0, rs1.0, rs2.0, 0),

        AddI { rd, rs1, imm } => pack(op::ADDI, rd.0, rs1.0, 0, imm),
        MulI { rd, rs1, imm } => pack(op::MULI, rd.0, rs1.0, 0, imm),
        AndI { rd, rs1, imm } => pack(op::ANDI, rd.0, rs1.0, 0, imm),
        OrI { rd, rs1, imm } => pack(op::ORI, rd.0, rs1.0, 0, imm),
        XorI { rd, rs1, imm } => pack(op::XORI, rd.0, rs1.0, 0, imm),
        ShlI { rd, rs1, imm } => pack(op::SHLI, rd.0, rs1.0, 0, imm),
        ShrI { rd, rs1, imm } => pack(op::SHRI, rd.0, rs1.0, 0, imm),
        SraI { rd, rs1, imm } => pack(op::SRAI, rd.0, rs1.0, 0, imm),
        SltI { rd, rs1, imm } => pack(op::SLTI, rd.0, rs1.0, 0, imm),

        Li { rd, imm } => pack(op::LI, rd.0, 0, 0, imm),
        OrHi { rd, imm } => pack(op::ORHI, rd.0, 0, 0, imm),
        Mv { rd, rs } => pack(op::MV, rd.0, rs.0, 0, 0),

        FAdd { fd, fs1, fs2 } => pack(op::FADD, fd.0, fs1.0, fs2.0, 0),
        FSub { fd, fs1, fs2 } => pack(op::FSUB, fd.0, fs1.0, fs2.0, 0),
        FMul { fd, fs1, fs2 } => pack(op::FMUL, fd.0, fs1.0, fs2.0, 0),
        FDiv { fd, fs1, fs2 } => pack(op::FDIV, fd.0, fs1.0, fs2.0, 0),
        FMin { fd, fs1, fs2 } => pack(op::FMIN, fd.0, fs1.0, fs2.0, 0),
        FMax { fd, fs1, fs2 } => pack(op::FMAX, fd.0, fs1.0, fs2.0, 0),
        FNeg { fd, fs } => pack(op::FNEG, fd.0, fs.0, 0, 0),
        FAbs { fd, fs } => pack(op::FABS, fd.0, fs.0, 0, 0),
        FSqrt { fd, fs } => pack(op::FSQRT, fd.0, fs.0, 0, 0),
        FSin { fd, fs } => pack(op::FSIN, fd.0, fs.0, 0, 0),
        FCos { fd, fs } => pack(op::FCOS, fd.0, fs.0, 0, 0),
        FMv { fd, fs } => pack(op::FMV, fd.0, fs.0, 0, 0),
        FLi { fd, value } => pack(op::FLI, fd.0, 0, 0, value.to_bits() as i32),
        ItoF { fd, rs } => pack(op::ITOF, fd.0, rs.0, 0, 0),
        FtoI { rd, fs } => pack(op::FTOI, rd.0, fs.0, 0, 0),
        FLt { rd, fs1, fs2 } => pack(op::FLT, rd.0, fs1.0, fs2.0, 0),
        FLe { rd, fs1, fs2 } => pack(op::FLE, rd.0, fs1.0, fs2.0, 0),
        FEq { rd, fs1, fs2 } => pack(op::FEQ, rd.0, fs1.0, fs2.0, 0),

        Ld {
            rd,
            base,
            off,
            width,
        } => {
            let opc = match width {
                MemWidth::B1 => op::LD1,
                MemWidth::B2 => op::LD2,
                MemWidth::B4 => op::LD4,
                MemWidth::B8 => op::LD8,
            };
            pack(opc, rd.0, base.0, 0, off)
        }
        St {
            rs,
            base,
            off,
            width,
        } => {
            let opc = match width {
                MemWidth::B1 => op::ST1,
                MemWidth::B2 => op::ST2,
                MemWidth::B4 => op::ST4,
                MemWidth::B8 => op::ST8,
            };
            pack(opc, rs.0, base.0, 0, off)
        }
        FLd { fd, base, off } => pack(op::FLD, fd.0, base.0, 0, off),
        FSt { fs, base, off } => pack(op::FST, fs.0, base.0, 0, off),
        FLd4 { fd, base, off } => pack(op::FLD4, fd.0, base.0, 0, off),
        FSt4 { fs, base, off } => pack(op::FST4, fs.0, base.0, 0, off),
        Prefetch { base, off } => pack(op::PREFETCH, 0, base.0, 0, off),
        PLd64 {
            rd,
            base,
            pred,
            off,
        } => pack(op::PLD64, rd.0, base.0, pred.0, off),
        PSt64 {
            rs,
            base,
            pred,
            off,
        } => pack(op::PST64, rs.0, base.0, pred.0, off),
        BCpy { dst, src, len } => pack(op::BCPY, dst.0, src.0, len.0, 0),

        Jmp { target } => pack(op::JMP, 0, 0, 0, target as i32),
        Br {
            cond,
            rs1,
            rs2,
            target,
        } => pack(op::BR, cond_code(cond), rs1.0, rs2.0, target as i32),
        Call { target } => pack(op::CALL, 0, 0, 0, target as i32),
        CallR { rs } => pack(op::CALLR, 0, rs.0, 0, 0),
        Ret => pack(op::RET, 0, 0, 0, 0),

        Host { func } => pack(op::HOST, 0, 0, 0, func.code() as i32),
        Halt => pack(op::HALT, 0, 0, 0, 0),
        Nop => pack(op::NOP, 0, 0, 0, 0),
    }
}

/// Decode one 8-byte instruction word.
pub fn decode(word: u64) -> Result<Inst, DecodeError> {
    let opcode = (word & 0xFF) as u8;
    let a = ((word >> 8) & 0xFF) as u8;
    let b = ((word >> 16) & 0xFF) as u8;
    let c = ((word >> 24) & 0xFF) as u8;
    let imm = (word >> 32) as u32 as i32;
    let err = || DecodeError { opcode, word };

    let ra = Reg(a);
    let rb = Reg(b);
    let rc = Reg(c);
    let fa = FReg(a);
    let fb = FReg(b);
    let fc = FReg(c);

    // Reject register fields outside the file: images are untrusted input
    // to the VM, like any binary is to Pin.
    let regs_ok =
        (a as usize) < Reg::COUNT && (b as usize) < Reg::COUNT && (c as usize) < Reg::COUNT;
    if !regs_ok {
        return Err(err());
    }

    use Inst::*;
    Ok(match opcode {
        op::ADD => Add {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::SUB => Sub {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::MUL => Mul {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::DIV => Div {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::REM => Rem {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::AND => And {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::OR => Or {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::XOR => Xor {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::SHL => Shl {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::SHR => Shr {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::SRA => Sra {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::SLT => Slt {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },
        op::SLTU => Sltu {
            rd: ra,
            rs1: rb,
            rs2: rc,
        },

        op::ADDI => AddI {
            rd: ra,
            rs1: rb,
            imm,
        },
        op::MULI => MulI {
            rd: ra,
            rs1: rb,
            imm,
        },
        op::ANDI => AndI {
            rd: ra,
            rs1: rb,
            imm,
        },
        op::ORI => OrI {
            rd: ra,
            rs1: rb,
            imm,
        },
        op::XORI => XorI {
            rd: ra,
            rs1: rb,
            imm,
        },
        op::SHLI => ShlI {
            rd: ra,
            rs1: rb,
            imm,
        },
        op::SHRI => ShrI {
            rd: ra,
            rs1: rb,
            imm,
        },
        op::SRAI => SraI {
            rd: ra,
            rs1: rb,
            imm,
        },
        op::SLTI => SltI {
            rd: ra,
            rs1: rb,
            imm,
        },

        op::LI => Li { rd: ra, imm },
        op::ORHI => OrHi { rd: ra, imm },
        op::MV => Mv { rd: ra, rs: rb },

        op::FADD => FAdd {
            fd: fa,
            fs1: fb,
            fs2: fc,
        },
        op::FSUB => FSub {
            fd: fa,
            fs1: fb,
            fs2: fc,
        },
        op::FMUL => FMul {
            fd: fa,
            fs1: fb,
            fs2: fc,
        },
        op::FDIV => FDiv {
            fd: fa,
            fs1: fb,
            fs2: fc,
        },
        op::FMIN => FMin {
            fd: fa,
            fs1: fb,
            fs2: fc,
        },
        op::FMAX => FMax {
            fd: fa,
            fs1: fb,
            fs2: fc,
        },
        op::FNEG => FNeg { fd: fa, fs: fb },
        op::FABS => FAbs { fd: fa, fs: fb },
        op::FSQRT => FSqrt { fd: fa, fs: fb },
        op::FSIN => FSin { fd: fa, fs: fb },
        op::FCOS => FCos { fd: fa, fs: fb },
        op::FMV => FMv { fd: fa, fs: fb },
        op::FLI => FLi {
            fd: fa,
            value: f32::from_bits(imm as u32),
        },
        op::ITOF => ItoF { fd: fa, rs: rb },
        op::FTOI => FtoI { rd: ra, fs: fb },
        op::FLT => FLt {
            rd: ra,
            fs1: fb,
            fs2: fc,
        },
        op::FLE => FLe {
            rd: ra,
            fs1: fb,
            fs2: fc,
        },
        op::FEQ => FEq {
            rd: ra,
            fs1: fb,
            fs2: fc,
        },

        op::LD1 => Ld {
            rd: ra,
            base: rb,
            off: imm,
            width: MemWidth::B1,
        },
        op::LD2 => Ld {
            rd: ra,
            base: rb,
            off: imm,
            width: MemWidth::B2,
        },
        op::LD4 => Ld {
            rd: ra,
            base: rb,
            off: imm,
            width: MemWidth::B4,
        },
        op::LD8 => Ld {
            rd: ra,
            base: rb,
            off: imm,
            width: MemWidth::B8,
        },
        op::ST1 => St {
            rs: ra,
            base: rb,
            off: imm,
            width: MemWidth::B1,
        },
        op::ST2 => St {
            rs: ra,
            base: rb,
            off: imm,
            width: MemWidth::B2,
        },
        op::ST4 => St {
            rs: ra,
            base: rb,
            off: imm,
            width: MemWidth::B4,
        },
        op::ST8 => St {
            rs: ra,
            base: rb,
            off: imm,
            width: MemWidth::B8,
        },
        op::FLD => FLd {
            fd: fa,
            base: rb,
            off: imm,
        },
        op::FST => FSt {
            fs: fa,
            base: rb,
            off: imm,
        },
        op::FLD4 => FLd4 {
            fd: fa,
            base: rb,
            off: imm,
        },
        op::FST4 => FSt4 {
            fs: fa,
            base: rb,
            off: imm,
        },
        op::PREFETCH => Prefetch { base: rb, off: imm },
        op::PLD64 => PLd64 {
            rd: ra,
            base: rb,
            pred: rc,
            off: imm,
        },
        op::PST64 => PSt64 {
            rs: ra,
            base: rb,
            pred: rc,
            off: imm,
        },
        op::BCPY => BCpy {
            dst: ra,
            src: rb,
            len: rc,
        },

        op::JMP => Jmp { target: imm as u32 },
        op::BR => Br {
            cond: cond_from(a).ok_or_else(err)?,
            rs1: rb,
            rs2: rc,
            target: imm as u32,
        },
        op::CALL => Call { target: imm as u32 },
        op::CALLR => CallR { rs: rb },
        op::RET => Ret,

        op::HOST => Host {
            func: HostFn::from_code(imm as u16).ok_or_else(err)?,
        },
        op::HALT => Halt,
        op::NOP => Nop,

        _ => return Err(err()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BrCond, HostFn, Inst, MemWidth};
    use crate::reg::{FReg, Reg};

    fn sample_instructions() -> Vec<Inst> {
        use Inst::*;
        vec![
            Add {
                rd: Reg(1),
                rs1: Reg(2),
                rs2: Reg(3),
            },
            Sub {
                rd: Reg(31),
                rs1: Reg(0),
                rs2: Reg(15),
            },
            Div {
                rd: Reg(4),
                rs1: Reg(5),
                rs2: Reg(6),
            },
            AddI {
                rd: Reg(7),
                rs1: Reg(8),
                imm: -1234567,
            },
            ShlI {
                rd: Reg(7),
                rs1: Reg(8),
                imm: 63,
            },
            Li {
                rd: Reg(9),
                imm: i32::MIN,
            },
            OrHi {
                rd: Reg(9),
                imm: -1,
            },
            Mv {
                rd: Reg(10),
                rs: Reg(11),
            },
            FAdd {
                fd: FReg(1),
                fs1: FReg(2),
                fs2: FReg(3),
            },
            FSqrt {
                fd: FReg(4),
                fs: FReg(5),
            },
            FLi {
                fd: FReg(6),
                value: 3.25,
            },
            ItoF {
                fd: FReg(7),
                rs: Reg(12),
            },
            FtoI {
                rd: Reg(13),
                fs: FReg(8),
            },
            FLt {
                rd: Reg(14),
                fs1: FReg(9),
                fs2: FReg(10),
            },
            Ld {
                rd: Reg(1),
                base: Reg(29),
                off: -16,
                width: MemWidth::B1,
            },
            Ld {
                rd: Reg(1),
                base: Reg(29),
                off: 2048,
                width: MemWidth::B8,
            },
            St {
                rs: Reg(2),
                base: Reg(3),
                off: 0,
                width: MemWidth::B2,
            },
            FLd {
                fd: FReg(1),
                base: Reg(4),
                off: 8,
            },
            FSt4 {
                fs: FReg(2),
                base: Reg(5),
                off: 12,
            },
            Prefetch {
                base: Reg(6),
                off: 64,
            },
            PLd64 {
                rd: Reg(7),
                base: Reg(8),
                pred: Reg(9),
                off: 24,
            },
            PSt64 {
                rs: Reg(10),
                base: Reg(11),
                pred: Reg(12),
                off: -8,
            },
            BCpy {
                dst: Reg(1),
                src: Reg(2),
                len: Reg(3),
            },
            Jmp { target: 0x10010 },
            Br {
                cond: BrCond::Ltu,
                rs1: Reg(1),
                rs2: Reg(2),
                target: 0x20000,
            },
            Call { target: 0x10000 },
            CallR { rs: Reg(20) },
            Ret,
            Host {
                func: HostFn::FsRead,
            },
            Halt,
            Nop,
        ]
    }

    #[test]
    fn roundtrip_samples() {
        for inst in sample_instructions() {
            let word = encode(inst);
            let back = decode(word).expect("decodes");
            assert_eq!(back, inst, "word {:#018x}", word);
        }
    }

    #[test]
    fn rejects_bad_opcode() {
        assert!(decode(0x00).is_err());
        assert!(decode(0xFF).is_err());
    }

    #[test]
    fn rejects_out_of_range_register() {
        // Opcode ADD with register field 200.
        let word = super::pack(super::op::ADD, 200, 0, 0, 0);
        assert!(decode(word).is_err());
    }

    #[test]
    fn rejects_bad_branch_condition() {
        let word = super::pack(super::op::BR, 17, 0, 0, 0);
        assert!(decode(word).is_err());
    }

    #[test]
    fn rejects_bad_host_code() {
        let word = super::pack(super::op::HOST, 0, 0, 0, 4095);
        assert!(decode(word).is_err());
    }

    #[test]
    fn fli_preserves_value_bits() {
        for v in [0.0f32, -0.0, 1.5, f32::INFINITY, f32::MIN_POSITIVE] {
            let word = encode(Inst::FLi {
                fd: FReg(0),
                value: v,
            });
            match decode(word).unwrap() {
                Inst::FLi { value, .. } => assert_eq!(value.to_bits(), v.to_bits()),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
