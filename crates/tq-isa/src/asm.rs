//! A small assembler: symbolic labels, routine tracking, fixup resolution.
//!
//! The kernel compiler and the hand-written runtime routines both emit
//! through [`Asm`]. Targets are symbolic until [`Asm::finish`] lays the text
//! out at its base address and patches every branch, jump and call.

use crate::image::{DataSeg, Image, Routine};
use crate::inst::{BrCond, Inst};
use crate::reg::Reg;
use crate::INST_BYTES;
use std::collections::HashMap;

/// Assembly-time error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A routine was opened while the previous one was still open is fine;
    /// but finishing with no routines at all is suspicious for an image.
    NoRoutines,
    /// The resolved target does not fit the 32-bit target field.
    TargetOutOfRange(String, u64),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::NoRoutines => write!(f, "image has no routines"),
            AsmError::TargetOutOfRange(l, a) => {
                write!(
                    f,
                    "label `{l}` resolves to {a:#x}, outside the 32-bit target range"
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Clone, Copy, Debug)]
enum FixKind {
    Jmp,
    Br,
    Call,
    /// `Li` of a label address (for indirect calls / function pointers).
    LiAddr,
}

/// The assembler. Instructions are collected with symbolic control-flow
/// targets; [`Asm::finish`] resolves everything against a base address and
/// produces an [`Image`].
pub struct Asm {
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String, FixKind)>,
    /// (name, first instruction index); closed by the next routine or finish.
    routines: Vec<(String, usize)>,
    data: Vec<DataSeg>,
}

impl Default for Asm {
    fn default() -> Self {
        Self::new()
    }
}

impl Asm {
    /// Fresh assembler.
    pub fn new() -> Self {
        Asm {
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            routines: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Emit a fully-resolved instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> Result<(), AsmError> {
        let name = name.into();
        if self.labels.insert(name.clone(), self.insts.len()).is_some() {
            return Err(AsmError::DuplicateLabel(name));
        }
        Ok(())
    }

    /// Begin a routine: defines a label with the routine's name and records
    /// the symbol. Routines run until the next `begin_routine` or `finish`.
    pub fn begin_routine(&mut self, name: impl Into<String>) -> Result<(), AsmError> {
        let name = name.into();
        self.label(name.clone())?;
        self.routines.push((name, self.insts.len()));
        Ok(())
    }

    /// Emit an unconditional jump to `label`.
    pub fn jmp(&mut self, label: impl Into<String>) {
        self.fixups
            .push((self.insts.len(), label.into(), FixKind::Jmp));
        self.insts.push(Inst::Jmp { target: 0 });
    }

    /// Emit a conditional branch to `label`.
    pub fn br(&mut self, cond: BrCond, rs1: Reg, rs2: Reg, label: impl Into<String>) {
        self.fixups
            .push((self.insts.len(), label.into(), FixKind::Br));
        self.insts.push(Inst::Br {
            cond,
            rs1,
            rs2,
            target: 0,
        });
    }

    /// Emit a direct call to the routine labelled `label`.
    pub fn call(&mut self, label: impl Into<String>) {
        self.fixups
            .push((self.insts.len(), label.into(), FixKind::Call));
        self.insts.push(Inst::Call { target: 0 });
    }

    /// Load the absolute address of `label` into `rd` (for indirect calls).
    pub fn li_addr(&mut self, rd: Reg, label: impl Into<String>) {
        self.fixups
            .push((self.insts.len(), label.into(), FixKind::LiAddr));
        self.insts.push(Inst::Li { rd, imm: 0 });
    }

    /// Attach an initialised data segment to the image being assembled.
    pub fn data(&mut self, addr: u64, bytes: Vec<u8>) {
        self.data.push(DataSeg { addr, bytes });
    }

    /// Resolve all fixups against `base` and produce an image.
    pub fn finish(
        self,
        name: impl Into<String>,
        base: u64,
        is_main: bool,
    ) -> Result<Image, AsmError> {
        self.finish_with_externs(name, base, is_main, &HashMap::new())
    }

    /// Like [`Asm::finish`], but labels not defined locally are resolved
    /// against `externs` — absolute addresses of symbols in *other* images
    /// (the linker step for calls from the main image into `libsim`).
    pub fn finish_with_externs(
        self,
        name: impl Into<String>,
        base: u64,
        is_main: bool,
        externs: &HashMap<String, u64>,
    ) -> Result<Image, AsmError> {
        if self.routines.is_empty() {
            return Err(AsmError::NoRoutines);
        }
        let mut insts = self.insts;
        for (idx, label, kind) in &self.fixups {
            let addr = match self.labels.get(label) {
                Some(&target_idx) => base + target_idx as u64 * INST_BYTES,
                None => *externs
                    .get(label)
                    .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?,
            };
            if addr > u32::MAX as u64 {
                return Err(AsmError::TargetOutOfRange(label.clone(), addr));
            }
            let t = addr as u32;
            insts[*idx] = match (kind, insts[*idx]) {
                (FixKind::Jmp, Inst::Jmp { .. }) => Inst::Jmp { target: t },
                (FixKind::Br, Inst::Br { cond, rs1, rs2, .. }) => Inst::Br {
                    cond,
                    rs1,
                    rs2,
                    target: t,
                },
                (FixKind::Call, Inst::Call { .. }) => Inst::Call { target: t },
                (FixKind::LiAddr, Inst::Li { rd, .. }) => Inst::Li { rd, imm: t as i32 },
                (_, other) => unreachable!("fixup kind mismatch at {idx}: {other:?}"),
            };
        }

        // Close routines: each runs to the start of the next.
        let mut routines = Vec::with_capacity(self.routines.len());
        for (i, (rname, start_idx)) in self.routines.iter().enumerate() {
            let end_idx = self
                .routines
                .get(i + 1)
                .map(|(_, s)| *s)
                .unwrap_or(insts.len());
            routines.push(Routine {
                name: rname.clone(),
                start: base + *start_idx as u64 * INST_BYTES,
                end: base + end_idx as u64 * INST_BYTES,
            });
        }

        let text = insts.into_iter().map(crate::encode).collect();
        let image = Image {
            name: name.into(),
            base,
            text,
            routines,
            data: self.data,
            is_main,
        };
        debug_assert_eq!(image.validate(), Ok(()));
        Ok(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BrCond, Inst};
    use crate::reg::Reg;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        a.begin_routine("main").unwrap();
        a.emit(Inst::Li { rd: Reg(1), imm: 0 });
        a.label("loop").unwrap();
        a.emit(Inst::AddI {
            rd: Reg(1),
            rs1: Reg(1),
            imm: 1,
        });
        a.br(BrCond::Lt, Reg(1), Reg(2), "loop"); // backward
        a.jmp("done"); // forward
        a.emit(Inst::Nop);
        a.label("done").unwrap();
        a.emit(Inst::Halt);
        let img = a.finish("t", 0x10000, true).unwrap();

        // Branch at index 2 targets index 1.
        assert_eq!(
            img.fetch(0x10010).unwrap(),
            Inst::Br {
                cond: BrCond::Lt,
                rs1: Reg(1),
                rs2: Reg(2),
                target: 0x10008
            }
        );
        // Jump at index 3 targets index 5.
        assert_eq!(img.fetch(0x10018).unwrap(), Inst::Jmp { target: 0x10028 });
    }

    #[test]
    fn routines_close_at_the_next_routine() {
        let mut a = Asm::new();
        a.begin_routine("f").unwrap();
        a.emit(Inst::Nop);
        a.emit(Inst::Ret);
        a.begin_routine("g").unwrap();
        a.emit(Inst::Ret);
        let img = a.finish("t", 0x20000, true).unwrap();
        assert_eq!(img.routines[0].name, "f");
        assert_eq!(img.routines[0].end, 0x20010);
        assert_eq!(img.routines[1].start, 0x20010);
        assert_eq!(img.routines[1].end, 0x20018);
    }

    #[test]
    fn call_fixups_and_li_addr() {
        let mut a = Asm::new();
        a.begin_routine("main").unwrap();
        a.call("callee");
        a.li_addr(Reg(5), "callee");
        a.emit(Inst::Halt);
        a.begin_routine("callee").unwrap();
        a.emit(Inst::Ret);
        let img = a.finish("t", 0x10000, true).unwrap();
        assert_eq!(img.fetch(0x10000).unwrap(), Inst::Call { target: 0x10018 });
        assert_eq!(
            img.fetch(0x10008).unwrap(),
            Inst::Li {
                rd: Reg(5),
                imm: 0x10018
            }
        );
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Asm::new();
        a.begin_routine("main").unwrap();
        a.jmp("nowhere");
        assert_eq!(
            a.finish("t", 0x10000, true).unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new();
        a.begin_routine("main").unwrap();
        a.label("x").unwrap();
        assert_eq!(
            a.label("x").unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn empty_image_errors() {
        let a = Asm::new();
        assert_eq!(a.finish("t", 0, true).unwrap_err(), AsmError::NoRoutines);
    }
}
