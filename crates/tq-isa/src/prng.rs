//! Vendored pseudo-random number generator — SplitMix64 seeding an
//! xorshift64* core.
//!
//! The workspace builds with zero external crates (no registry access in
//! the build environment), so the `rand` crate is replaced by this module.
//! It is used for deterministic synthetic *inputs* (wfs audio, imgproc
//! test images) and for the randomized differential tests; none of the
//! profiling results depend on the statistical quality of the generator,
//! only on its determinism for a fixed seed.

/// A small deterministic PRNG: SplitMix64 expands the seed, xorshift64*
/// generates the stream.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

/// One SplitMix64 step — also usable standalone for hashing/seeding.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Deterministic generator for `seed` (any value, including 0).
    pub fn new(seed: u64) -> Rng {
        let mut s = seed;
        // SplitMix64 guarantees a non-degenerate xorshift state even for
        // pathological seeds (0, small integers).
        let state = splitmix64(&mut s) | 1;
        Rng { state }
    }

    /// Next 64 uniformly distributed bits (xorshift64*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[lo, hi)`. Panics when the range is empty.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift range reduction; the modulo bias over a 64-bit
        // stream is far below anything the tests can observe.
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi as i128 - lo as i128) as u128;
        let off = ((self.next_u64() as u128 * span) >> 64) as i128;
        (lo as i128 + off) as i64
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.u64_in(0, n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.f64_unit()
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Fill a byte slice with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8).map(|_| Rng::new(42).next_u64()).collect();
        assert!(
            a.windows(2).all(|w| w[0] == w[1]),
            "same seed, same first draw"
        );
        let mut r1 = Rng::new(1);
        let mut r2 = Rng::new(1);
        let mut r3 = Rng::new(2);
        let s1: Vec<u64> = (0..32).map(|_| r1.next_u64()).collect();
        let s2: Vec<u64> = (0..32).map(|_| r2.next_u64()).collect();
        let s3: Vec<u64> = (0..32).map(|_| r3.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..2000 {
            let u = r.u64_in(10, 20);
            assert!((10..20).contains(&u));
            let i = r.i64_in(-5, 5);
            assert!((-5..5).contains(&i));
            let f = r.f64_in(-1.5, 2.5);
            assert!((-1.5..2.5).contains(&f));
            let n = r.index(3);
            assert!(n < 3);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Rng::new(0);
        let draws: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = Rng::new(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..4000 {
            let x = r.f64_unit();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut r = Rng::new(9);
        for len in 0..20 {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }
}
