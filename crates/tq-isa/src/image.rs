//! Binary images and programs — the object model the VM loader consumes.
//!
//! Pin presents an executing process as a set of *images* (the main
//! executable plus shared libraries), each containing *routines* (symbols).
//! tQUAD relies on this structure in two places: `PIN_InitSymbols` gives it
//! function names, and the `flag` argument of its `EnterFC` analysis routine
//! says whether the newly-called function lives in the **main** image
//! (library/OS routines can be excluded from the internal call stack).
//!
//! The reproduction keeps the same shape: a [`Program`] is a main [`Image`]
//! plus any number of library images (the kernel compiler places its runtime
//! support routines in a separate `libsim` image so the exclusion option is
//! meaningful).

use crate::encode::{decode, DecodeError};
use crate::inst::Inst;
use crate::INST_BYTES;

/// Identifier of a routine within a [`Program`] (index into
/// [`Program::routines`]' flattened table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RoutineId(pub u32);

impl RoutineId {
    /// Sentinel used by tools before any routine has been entered.
    pub const INVALID: RoutineId = RoutineId(u32::MAX);

    /// Index into per-routine tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A named routine (function symbol): `[start, end)` byte addresses in the
/// text segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Routine {
    /// Symbol name, as reported to tools (the paper passes the name Pin
    /// reports into `EnterFC`).
    pub name: String,
    /// First instruction address.
    pub start: u64,
    /// One past the last instruction address.
    pub end: u64,
}

/// An initialised data segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataSeg {
    /// Load address.
    pub addr: u64,
    /// Initial bytes.
    pub bytes: Vec<u8>,
}

/// A binary image: text, symbols and initialised data.
#[derive(Clone, PartialEq, Debug)]
pub struct Image {
    /// Image name (e.g. `"wfs"`, `"libsim"`).
    pub name: String,
    /// Base address of the text section.
    pub base: u64,
    /// Encoded instruction words, loaded contiguously from `base`.
    pub text: Vec<u64>,
    /// Routines, sorted by `start`.
    pub routines: Vec<Routine>,
    /// Initialised data segments.
    pub data: Vec<DataSeg>,
    /// True for the application's main image; false for libraries. Drives
    /// tQUAD's option to ignore functions "which are not in the main image
    /// file of the program".
    pub is_main: bool,
}

impl Image {
    /// Address one past the end of this image's text.
    pub fn text_end(&self) -> u64 {
        self.base + self.text.len() as u64 * INST_BYTES
    }

    /// True if `pc` falls inside this image's text section.
    pub fn contains(&self, pc: u64) -> bool {
        pc >= self.base && pc < self.text_end()
    }

    /// Decode the instruction at byte address `pc`.
    pub fn fetch(&self, pc: u64) -> Result<Inst, DecodeError> {
        debug_assert!(self.contains(pc) && pc.is_multiple_of(INST_BYTES));
        let idx = ((pc - self.base) / INST_BYTES) as usize;
        decode(self.text[idx])
    }

    /// The routine containing `pc`, if any (binary search over the sorted
    /// routine list).
    pub fn routine_at(&self, pc: u64) -> Option<&Routine> {
        let idx = match self.routines.binary_search_by(|r| r.start.cmp(&pc)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let r = &self.routines[idx];
        (pc < r.end).then_some(r)
    }

    /// Look a routine up by name.
    pub fn routine_named(&self, name: &str) -> Option<&Routine> {
        self.routines.iter().find(|r| r.name == name)
    }

    /// Validate internal consistency (sorted, non-overlapping routines that
    /// lie within the text section; all words decodable). Returns the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        let end = self.text_end();
        let mut prev_end = self.base;
        for r in &self.routines {
            if r.start < prev_end {
                return Err(format!("routine {} overlaps its predecessor", r.name));
            }
            if r.end <= r.start {
                return Err(format!("routine {} is empty or inverted", r.name));
            }
            if r.end > end {
                return Err(format!("routine {} extends past the text section", r.name));
            }
            if r.start % INST_BYTES != 0 || r.end % INST_BYTES != 0 {
                return Err(format!("routine {} is misaligned", r.name));
            }
            prev_end = r.end;
        }
        for (i, &w) in self.text.iter().enumerate() {
            if let Err(e) = decode(w) {
                return Err(format!(
                    "undecodable word at {:#x}: {e}",
                    self.base + i as u64 * INST_BYTES
                ));
            }
        }
        Ok(())
    }
}

/// Convenience builder for hand-assembled images (tests and examples; the
/// kernel compiler drives [`crate::Asm`] directly).
pub struct ImageBuilder {
    name: String,
    base: u64,
    is_main: bool,
    text: Vec<u64>,
    routines: Vec<Routine>,
    data: Vec<DataSeg>,
}

impl ImageBuilder {
    /// Start building an image with text loaded at `base`.
    pub fn new(name: impl Into<String>, base: u64) -> Self {
        ImageBuilder {
            name: name.into(),
            base,
            is_main: true,
            text: Vec::new(),
            routines: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Mark the image as a library (not the main image).
    pub fn library(mut self) -> Self {
        self.is_main = false;
        self
    }

    /// Current emission address.
    pub fn here(&self) -> u64 {
        self.base + self.text.len() as u64 * INST_BYTES
    }

    /// Append a routine made of `insts`. Targets must already be absolute.
    pub fn routine(&mut self, name: impl Into<String>, insts: &[Inst]) -> u64 {
        let start = self.here();
        for &i in insts {
            self.text.push(crate::encode(i));
        }
        let end = self.here();
        self.routines.push(Routine {
            name: name.into(),
            start,
            end,
        });
        start
    }

    /// Add an initialised data segment.
    pub fn data(&mut self, addr: u64, bytes: Vec<u8>) {
        self.data.push(DataSeg { addr, bytes });
    }

    /// Finish the image.
    pub fn build(self) -> Image {
        let mut routines = self.routines;
        routines.sort_by_key(|r| r.start);
        Image {
            name: self.name,
            base: self.base,
            text: self.text,
            routines,
            data: self.data,
            is_main: self.is_main,
        }
    }
}

/// A complete program: one or more images and an entry point.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// All images; exactly one should have `is_main == true`.
    pub images: Vec<Image>,
    /// Entry address (must lie in some image's text).
    pub entry: u64,
}

impl Program {
    /// Build a program from a single main image, entering at `entry`.
    pub fn new(main: Image, entry: u64) -> Self {
        Program {
            images: vec![main],
            entry,
        }
    }

    /// Add a library image.
    pub fn with_library(mut self, lib: Image) -> Self {
        self.images.push(lib);
        self
    }

    /// The main image.
    pub fn main_image(&self) -> &Image {
        self.images
            .iter()
            .find(|i| i.is_main)
            .expect("program has a main image")
    }

    /// Iterate over `(image index, routine)` pairs in a deterministic order
    /// (image order, then routine start address).
    pub fn routines(&self) -> impl Iterator<Item = (usize, &Routine)> {
        self.images
            .iter()
            .enumerate()
            .flat_map(|(i, img)| img.routines.iter().map(move |r| (i, r)))
    }

    /// Find the image containing `pc`.
    pub fn image_at(&self, pc: u64) -> Option<(usize, &Image)> {
        self.images
            .iter()
            .enumerate()
            .find(|(_, img)| img.contains(pc))
    }

    /// Validate every image and the entry point.
    pub fn validate(&self) -> Result<(), String> {
        if self.images.iter().filter(|i| i.is_main).count() != 1 {
            return Err("program must have exactly one main image".into());
        }
        // Images must not overlap in the address space.
        let mut spans: Vec<(u64, u64, &str)> = self
            .images
            .iter()
            .map(|i| (i.base, i.text_end(), i.name.as_str()))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(format!("images {} and {} overlap", w[0].2, w[1].2));
            }
        }
        for img in &self.images {
            img.validate()
                .map_err(|e| format!("image {}: {e}", img.name))?;
        }
        if self.image_at(self.entry).is_none() {
            return Err(format!("entry {:#x} outside all images", self.entry));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::reg::Reg;

    fn tiny_image() -> Image {
        let mut b = ImageBuilder::new("main", 0x10000);
        b.routine(
            "start",
            &[
                Inst::Li {
                    rd: Reg(1),
                    imm: 42,
                },
                Inst::Halt,
            ],
        );
        b.routine("fn2", &[Inst::Nop, Inst::Ret]);
        b.build()
    }

    #[test]
    fn builder_lays_out_routines_contiguously() {
        let img = tiny_image();
        assert_eq!(img.routines.len(), 2);
        assert_eq!(img.routines[0].start, 0x10000);
        assert_eq!(img.routines[0].end, 0x10010);
        assert_eq!(img.routines[1].start, 0x10010);
        assert_eq!(img.text_end(), 0x10020);
        img.validate().unwrap();
    }

    #[test]
    fn routine_lookup_by_address() {
        let img = tiny_image();
        assert_eq!(img.routine_at(0x10000).unwrap().name, "start");
        assert_eq!(img.routine_at(0x10008).unwrap().name, "start");
        assert_eq!(img.routine_at(0x10010).unwrap().name, "fn2");
        assert_eq!(img.routine_at(0x10018).unwrap().name, "fn2");
        assert!(img.routine_at(0x10020).is_none());
        assert!(img.routine_at(0xFFF8).is_none());
    }

    #[test]
    fn fetch_decodes() {
        let img = tiny_image();
        assert_eq!(
            img.fetch(0x10000).unwrap(),
            Inst::Li {
                rd: Reg(1),
                imm: 42
            }
        );
        assert_eq!(img.fetch(0x10008).unwrap(), Inst::Halt);
    }

    #[test]
    fn program_validation_catches_overlap() {
        let a = tiny_image();
        let mut bb = ImageBuilder::new("lib", 0x10008);
        bb.routine("libfn", &[Inst::Ret]);
        let b = bb.library().build();
        let p = Program::new(a, 0x10000).with_library(b);
        assert!(p.validate().unwrap_err().contains("overlap"));
    }

    #[test]
    fn program_validation_requires_one_main() {
        let a = tiny_image();
        let mut p = Program::new(a.clone(), 0x10000);
        p.images.push({
            let mut other = a;
            other.base = 0x40000;
            other.routines.iter_mut().for_each(|r| {
                r.start += 0x30000;
                r.end += 0x30000;
            });
            other
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_entry() {
        let p = Program::new(tiny_image(), 0x999000);
        assert!(p.validate().unwrap_err().contains("entry"));
    }
}
