//! Chrome trace-event JSON exporter.
//!
//! Renders drained [`SpanEvent`]s as the trace-event format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): an object
//! with a `traceEvents` array of `"M"` (metadata: thread names) and `"X"`
//! (complete: one timed span) events. Timestamps and durations are
//! microseconds; we emit them with nanosecond precision as `micros.nnn`.
//!
//! The crate is dependency-free, so the JSON is hand-rolled here — with
//! exactly the escape set `tq_report::Json` produces (`"`, `\`, `\n`,
//! `\r`, `\t`, other control characters as `\u00xx`), so the output of
//! this exporter re-parses with the workspace's own JSON parser. The
//! verify-script smoke relies on that.

use crate::span::{drain_spans, snapshot_spans, thread_names, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Synthetic process id for all tracks; the trace describes one process.
/// Multi-process views exist too: `tq-profd`'s trace merger re-homes each
/// peer's events under its own pid.
const PID: u64 = 1;

pub(crate) fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nanoseconds rendered as fractional microseconds (`12.345`), the unit
/// Chrome's `ts`/`dur` fields expect. Integer math: no float rounding.
fn push_micros(ns: u64, out: &mut String) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Render `events` (plus `names` as `thread_name` metadata) as a Chrome
/// trace-event JSON document. Events are emitted sorted by start time, so
/// `ts` is monotonically non-decreasing; only tracks that actually carry
/// events get a metadata record.
pub fn chrome_trace(events: &[SpanEvent], names: &BTreeMap<u64, String>) -> String {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.start_ns, e.tid));

    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;

    let used: std::collections::BTreeSet<u64> = sorted.iter().map(|e| e.tid).collect();
    for tid in &used {
        if let Some(name) = names.get(tid) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"args\":{{\"name\":"
            );
            push_escaped(name, &mut out);
            out.push_str("}}");
        }
    }

    for ev in sorted {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        push_escaped(&ev.name, &mut out);
        out.push_str(",\"cat\":");
        push_escaped(ev.cat, &mut out);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"ts\":",
            ev.tid
        );
        push_micros(ev.start_ns, &mut out);
        out.push_str(",\"dur\":");
        push_micros(ev.dur_ns, &mut out);
        if ev.job_id != 0 {
            let _ = write!(out, ",\"args\":{{\"job_id\":\"{:016x}\"}}", ev.job_id);
        }
        out.push('}');
    }

    out.push_str("]}");
    out
}

/// Drain the global span log and export it: the one-call form used by
/// `--trace-out`. The log is empty afterwards.
pub fn drain_chrome_trace() -> String {
    let events = drain_spans();
    let names = thread_names();
    chrome_trace(&events, &names)
}

/// Export a copy of the global span log without clearing it: the form a
/// live daemon serves over the wire (`tq-profd`'s `trace` request), where
/// repeated exports must not steal each other's spans.
pub fn snapshot_chrome_trace() -> String {
    let events = snapshot_spans();
    let names = thread_names();
    chrome_trace(&events, &names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;
    use std::borrow::Cow;
    use tq_report::Json;

    fn ev(name: &str, tid: u64, start_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            name: Cow::Owned(name.to_string()),
            cat: "test",
            tid,
            start_ns,
            dur_ns,
            job_id: 0,
        }
    }

    fn trace_events(doc: &Json) -> &[Json] {
        doc.get("traceEvents").and_then(Json::as_arr).unwrap()
    }

    #[test]
    fn escapes_hostile_routine_names() {
        let events = [ev("quote\" slash\\ nl\n tab\t bell\u{7}", 1, 0, 10)];
        let text = chrome_trace(&events, &BTreeMap::new());
        assert!(text.contains(r#"quote\" slash\\ nl\n tab\t bell\u0007"#));
        let doc = Json::parse(&text).expect("hostile names still parse");
        let name = trace_events(&doc)[0].get("name").unwrap().as_str().unwrap();
        assert_eq!(name, "quote\" slash\\ nl\n tab\t bell\u{7}");
    }

    #[test]
    fn ts_is_monotonically_non_decreasing() {
        // Deliberately unsorted input: export must sort by start time.
        let events = [
            ev("c", 2, 5_500, 100),
            ev("a", 1, 1_000, 9_000),
            ev("b", 1, 5_500, 100),
            ev("d", 3, 2_250, 4_000),
        ];
        let text = chrome_trace(&events, &BTreeMap::new());
        let doc = Json::parse(&text).unwrap();
        let ts: Vec<f64> = trace_events(&doc)
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(ts.len(), 4);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts not sorted: {ts:?}");
    }

    #[test]
    fn micros_have_nanosecond_precision() {
        let events = [ev("p", 1, 1_234_567, 89)];
        let text = chrome_trace(&events, &BTreeMap::new());
        assert!(text.contains("\"ts\":1234.567"));
        assert!(text.contains("\"dur\":0.089"));
    }

    #[test]
    fn thread_name_metadata_only_for_used_tracks() {
        let mut names = BTreeMap::new();
        names.insert(1, "shard-0".to_string());
        names.insert(9, "idle \"thread\"".to_string());
        let events = [ev("work", 1, 0, 5)];
        let text = chrome_trace(&events, &names);
        let doc = Json::parse(&text).unwrap();
        let metas: Vec<&Json> = trace_events(&doc)
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 1, "only the used track is labelled");
        assert_eq!(
            metas[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("shard-0")
        );
    }

    #[test]
    fn job_ids_are_hex_args_and_untagged_spans_have_none() {
        let mut tagged = ev("routed", 1, 0, 10);
        tagged.job_id = 0x00AB_CDEF_0123_4567;
        let events = [tagged, ev("local", 1, 20, 10)];
        let text = chrome_trace(&events, &BTreeMap::new());
        let doc = Json::parse(&text).expect("trace parses");
        let evs = trace_events(&doc);
        assert_eq!(
            evs[0]
                .get("args")
                .and_then(|a| a.get("job_id"))
                .and_then(Json::as_str),
            Some("00abcdef01234567"),
            "{text}"
        );
        assert!(evs[1].get("args").is_none(), "untagged spans carry no args");
    }

    #[test]
    fn empty_log_is_still_a_valid_document() {
        let text = chrome_trace(&[], &BTreeMap::new());
        let doc = Json::parse(&text).unwrap();
        assert!(trace_events(&doc).is_empty());
    }

    #[test]
    fn drain_exports_and_clears() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        crate::span::drain_spans();
        {
            let _s = crate::span::span("exported", "test");
        }
        let text = drain_chrome_trace();
        assert!(text.contains("\"exported\""));
        let again = drain_chrome_trace();
        let doc = Json::parse(&again).unwrap();
        assert!(trace_events(&doc).is_empty(), "drain clears the log");
    }
}
