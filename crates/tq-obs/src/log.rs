//! Structured JSON-lines event log.
//!
//! Every record is one JSON object on one line — machine-parseable with
//! `tq_report::Json`, greppable by humans — written to stderr and kept in
//! a bounded in-memory tail ring so a running daemon can export its recent
//! history over the wire (`tq-profd`'s `logs` request) without any file
//! plumbing. Like the rest of the crate this is dependency-free and
//! gated: while observability is disabled (or the record's level is
//! filtered out) a log call is one relaxed atomic load and a branch.
//!
//! Severity is filtered by the `TQ_LOG` environment variable: one of
//! `off`, `error`, `warn`, `info` (the default), `debug` or `trace`,
//! case-insensitive. [`set_level`]/[`set_level_off`] override it at
//! runtime (a `logs` admin request could do the same).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::metrics::{counter, Counter};

/// Tail-ring capacity, in rendered records. Oldest records are
/// overwritten (and counted in `tq_log_dropped_total`) past this.
pub const TAIL_CAP: usize = 1024;

/// Severity of a log record. Ordered: `Error` is most severe, `Trace`
/// least; a filter at level L admits records with `level <= L`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and was not recovered.
    Error = 1,
    /// Degraded but handled: sheds, suspect peers, slow jobs.
    Warn = 2,
    /// Normal lifecycle milestones (startup, config, recovery).
    Info = 3,
    /// Per-job lifecycle detail; quiet at the default filter.
    Debug = 4,
    /// High-volume internals (per-frame, per-probe).
    Trace = 5,
}

impl Level {
    /// Lowercase name, as rendered into records and accepted by `TQ_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name (case-insensitive). `off` is not a record
    /// level — see [`set_level_off`] / the `TQ_LOG` grammar.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// One field value. `From` impls cover the workspace's common types so
/// call sites read `("micros", n.into())`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values render as `null`.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String, escaped on render.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Filter states beyond the five levels: `OFF` admits nothing, `UNINIT`
/// means "consult `TQ_LOG` on first use".
const OFF: u8 = 0;
const UNINIT: u8 = 0xFF;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);
static STDERR: AtomicBool = AtomicBool::new(true);
static TAIL: Mutex<VecDeque<String>> = Mutex::new(VecDeque::new());

fn current_level() -> u8 {
    match LEVEL.load(Ordering::Relaxed) {
        UNINIT => init_from_env(),
        v => v,
    }
}

#[cold]
fn init_from_env() -> u8 {
    let filter = match std::env::var("TQ_LOG").as_deref() {
        Ok(s) if s.eq_ignore_ascii_case("off") => OFF,
        Ok(s) => Level::parse(s).map_or(Level::Info as u8, |l| l as u8),
        Err(_) => Level::Info as u8,
    };
    // A concurrent set_level wins: only replace the uninitialised state.
    let _ = LEVEL.compare_exchange(UNINIT, filter, Ordering::Relaxed, Ordering::Relaxed);
    LEVEL.load(Ordering::Relaxed)
}

/// Whether a record at `level` would be admitted right now. This is the
/// whole disabled fast path: the global gate load plus one filter load.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    crate::enabled() && (level as u8) <= current_level()
}

/// Set the severity filter: records with `level <= filter` are admitted.
/// Overrides whatever `TQ_LOG` said.
pub fn set_level(filter: Level) {
    LEVEL.store(filter as u8, Ordering::Relaxed);
}

/// Silence the log entirely (the `TQ_LOG=off` state).
pub fn set_level_off() {
    LEVEL.store(OFF, Ordering::Relaxed);
}

/// The current filter as its `TQ_LOG` name (`off` when silenced).
pub fn level_name() -> &'static str {
    match current_level() {
        OFF => "off",
        1 => "error",
        2 => "warn",
        3 => "info",
        4 => "debug",
        _ => "trace",
    }
}

/// Route records to stderr (default true). Tests and embedders that only
/// want the tail ring turn this off; the ring is always fed.
pub fn set_stderr(on: bool) {
    STDERR.store(on, Ordering::Relaxed);
}

fn records_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| counter("tq_log_records_total", "Structured log records emitted."))
}

fn dropped_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| {
        counter(
            "tq_log_dropped_total",
            "Structured log records overwritten in the bounded tail ring.",
        )
    })
}

/// Render one record as a single JSON line. Key order is fixed
/// (`ts_ns`, `level`, `target`, `event`, then fields in call order) so
/// records are stable for tests and diffs.
fn render(level: Level, target: &str, event: &str, fields: &[(&str, Value)]) -> String {
    let mut out = String::with_capacity(96 + fields.len() * 24);
    let _ = write!(out, "{{\"ts_ns\":{},\"level\":\"", crate::now_ns());
    out.push_str(level.as_str());
    out.push_str("\",\"target\":");
    crate::chrome::push_escaped(target, &mut out);
    out.push_str(",\"event\":");
    crate::chrome::push_escaped(event, &mut out);
    for (key, value) in fields {
        out.push(',');
        crate::chrome::push_escaped(key, &mut out);
        out.push(':');
        match value {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(v) => crate::chrome::push_escaped(v, &mut out),
        }
    }
    out.push('}');
    out
}

/// Emit one structured record if `level` passes the filter. `target`
/// names the emitting subsystem (`tq-profd`, `tq-cli`…), `event` is a
/// stable machine-matchable name (`job_done`, `overload_shed`…), and
/// `fields` carry the payload.
pub fn emit(level: Level, target: &str, event: &str, fields: &[(&str, Value)]) {
    if !level_enabled(level) {
        return;
    }
    let line = render(level, target, event, fields);
    records_total().inc();
    {
        let mut tail = TAIL.lock().unwrap_or_else(|e| e.into_inner());
        if tail.len() >= TAIL_CAP {
            tail.pop_front();
            dropped_total().inc();
        }
        tail.push_back(line.clone());
    }
    if STDERR.load(Ordering::Relaxed) {
        let _ = writeln!(std::io::stderr().lock(), "{line}");
    }
}

/// [`emit`] at [`Level::Error`].
pub fn error(target: &str, event: &str, fields: &[(&str, Value)]) {
    emit(Level::Error, target, event, fields);
}
/// [`emit`] at [`Level::Warn`].
pub fn warn(target: &str, event: &str, fields: &[(&str, Value)]) {
    emit(Level::Warn, target, event, fields);
}
/// [`emit`] at [`Level::Info`].
pub fn info(target: &str, event: &str, fields: &[(&str, Value)]) {
    emit(Level::Info, target, event, fields);
}
/// [`emit`] at [`Level::Debug`].
pub fn debug(target: &str, event: &str, fields: &[(&str, Value)]) {
    emit(Level::Debug, target, event, fields);
}
/// [`emit`] at [`Level::Trace`].
pub fn trace(target: &str, event: &str, fields: &[(&str, Value)]) {
    emit(Level::Trace, target, event, fields);
}

/// Snapshot of the tail ring, oldest first. Non-destructive: the ring
/// keeps its records so repeated exports see overlapping history.
pub fn tail() -> Vec<String> {
    TAIL.lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// Empty the tail ring (tests; an operator "ack" could use it too).
pub fn clear_tail() {
    TAIL.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;
    use tq_report::Json;

    fn quiet() {
        crate::set_enabled(true);
        set_stderr(false);
        clear_tail();
    }

    #[test]
    fn records_render_as_parseable_json_lines() {
        let _g = test_lock::hold();
        quiet();
        set_level(Level::Debug);
        debug(
            "tq-test",
            "job_done",
            &[
                ("job_id", "00ab".into()),
                ("micros", 123u64.into()),
                ("cached", true.into()),
                ("note", "quote\" nl\n".into()),
            ],
        );
        let tail = tail();
        assert_eq!(tail.len(), 1);
        let doc = Json::parse(&tail[0]).expect("record parses");
        assert_eq!(doc.get("level").and_then(Json::as_str), Some("debug"));
        assert_eq!(doc.get("target").and_then(Json::as_str), Some("tq-test"));
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("job_done"));
        assert_eq!(doc.get("micros").and_then(Json::as_u64), Some(123));
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("note").and_then(Json::as_str), Some("quote\" nl\n"));
        assert!(doc.get("ts_ns").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn filter_admits_at_or_above_severity_only() {
        let _g = test_lock::hold();
        quiet();
        set_level(Level::Warn);
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));
        info("tq-test", "filtered", &[]);
        warn("tq-test", "admitted", &[]);
        let tail = tail();
        assert_eq!(tail.len(), 1, "{tail:?}");
        assert!(tail[0].contains("\"admitted\""));
        set_level(Level::Info);
    }

    #[test]
    fn off_silences_everything() {
        let _g = test_lock::hold();
        quiet();
        set_level_off();
        assert_eq!(level_name(), "off");
        assert!(!level_enabled(Level::Error));
        error("tq-test", "silenced", &[]);
        assert!(tail().is_empty());
        set_level(Level::Info);
        assert_eq!(level_name(), "info");
    }

    #[test]
    fn disabled_gate_beats_any_filter() {
        let _g = test_lock::hold();
        quiet();
        set_level(Level::Trace);
        crate::set_enabled(false);
        assert!(!level_enabled(Level::Error));
        error("tq-test", "gated", &[]);
        crate::set_enabled(true);
        assert!(tail().is_empty());
        set_level(Level::Info);
    }

    #[test]
    fn tail_ring_is_bounded_and_counts_drops() {
        let _g = test_lock::hold();
        quiet();
        set_level(Level::Info);
        for i in 0..(TAIL_CAP + 16) {
            info("tq-test", "tick", &[("i", (i as u64).into())]);
        }
        let tail = tail();
        assert_eq!(tail.len(), TAIL_CAP);
        // The survivors are the newest records.
        assert!(tail[0].contains("\"i\":16"), "{}", tail[0]);
        assert!(tail[TAIL_CAP - 1].contains(&format!("\"i\":{}", TAIL_CAP + 15)));
        clear_tail();
    }

    #[test]
    fn level_names_round_trip() {
        for level in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert_eq!(Level::parse("off"), None, "off is a filter, not a level");
    }

    #[test]
    fn non_finite_floats_render_null() {
        let _g = test_lock::hold();
        quiet();
        set_level(Level::Info);
        info(
            "tq-test",
            "f",
            &[("x", f64::NAN.into()), ("y", 1.5f64.into())],
        );
        let tail = tail();
        assert!(tail[0].contains("\"x\":null"), "{}", tail[0]);
        assert!(tail[0].contains("\"y\":1.5"), "{}", tail[0]);
        clear_tail();
    }
}
