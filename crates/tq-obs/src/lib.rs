//! # tq-obs — the profiler profiling itself
//!
//! tQUAD's whole premise is that cheap, always-on measurement changes how
//! you build systems; this crate applies the premise to the reproduction
//! itself. It provides the primitives a self-hosted telemetry layer
//! needs, with zero external dependencies (the workspace builds offline):
//!
//! * **spans** ([`span()`]/[`span_named`]) — RAII wall-clock timers recorded
//!   into per-thread ring buffers. Each recording thread is its own
//!   *track*, so a sharded replay shows one lane per shard when the log is
//!   exported as Chrome trace-event JSON ([`chrome`]) and loaded in
//!   `chrome://tracing` or Perfetto. Spans opened inside a [`with_job`]
//!   scope carry a distributed-trace `job_id`, the correlation key the
//!   fleet trace merger joins on;
//! * **a structured event log** ([`log`]) — JSON-lines records with
//!   severity levels, a `TQ_LOG` environment filter and a bounded
//!   in-memory tail ring, so a daemon can export its recent history over
//!   the wire;
//! * **metrics** ([`counter`]/[`gauge`]/[`histogram`]) — process-global
//!   monotonic counters, gauges and log₂ histograms behind cloneable
//!   atomic handles, exported as Prometheus-style text exposition
//!   ([`prometheus_text`]);
//! * **a global on/off gate** ([`enabled`]/[`set_enabled`], initialised
//!   from the `TQ_OBS` environment variable) — when disabled, every
//!   instrumentation point degrades to one relaxed atomic load and a
//!   branch, a cost the `obs_overhead` bench guard in `tq-bench` bounds at
//!   well under 2% of replay throughput.
//!
//! Everything is bounded: span rings overwrite their oldest entries
//! (dropped spans are counted), logs of exited threads are folded into a
//! bounded retirement ring, and the metric registry only grows with the
//! number of *distinct metric names*, which is static in practice. A
//! long-running `tq-profd` daemon can therefore leave observability on
//! forever.

#![warn(missing_docs)]

pub mod chrome;
pub mod log;
pub mod metrics;
pub mod span;

pub use chrome::{chrome_trace, drain_chrome_trace, snapshot_chrome_trace};
pub use metrics::{counter, gauge, histogram, prometheus_text, Counter, Gauge, Histogram};
pub use span::{
    current_job, current_tid, drain_spans, dropped_spans, set_thread_name, snapshot_spans, span,
    span_named, thread_names, with_job, JobGuard, SpanEvent, SpanGuard,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Tri-state gate: 0 = not yet initialised (consult `TQ_OBS`), 1 = on,
/// 2 = off.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether instrumentation is live. The first call consults the `TQ_OBS`
/// environment variable (`0`, `off`, `false` or `no` disable; anything
/// else, including unset, enables) and caches the answer; [`set_enabled`]
/// overrides it at any time. This is the only check on the disabled fast
/// path — a relaxed load and a compare.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = !matches!(
        std::env::var("TQ_OBS").as_deref(),
        Ok("0") | Ok("off") | Ok("false") | Ok("no")
    );
    // A concurrent set_enabled wins: only replace the uninitialised state.
    let _ = STATE.compare_exchange(
        0,
        if on { 1 } else { 2 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == 1
}

/// Force instrumentation on or off (e.g. the `--no-obs` CLI flag).
/// Overrides whatever `TQ_OBS` said.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Process epoch: all span timestamps are nanoseconds since the first
/// observation, which keeps them small and makes exported traces start
/// near t=0.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch. Public because distributed
/// tracing needs it: a client timestamps its round-trip to a peer's
/// `trace` endpoint in this clock, the peer reports its own `now_ns`,
/// and the difference (NTP-style) estimates the per-peer clock offset
/// used to merge span rings onto one timeline.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Tests that toggle the global gate or drain the global span log must
    /// serialise against each other (the test harness runs them on
    /// concurrent threads).
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_toggles() {
        let _g = test_lock::hold();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
