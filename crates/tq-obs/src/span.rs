//! Span timers and the per-thread event log.
//!
//! A [`SpanGuard`] measures the wall-clock time between its creation and
//! its drop and appends one [`SpanEvent`] to the *recording thread's* ring
//! buffer. Rings are lock-free in spirit: each is a mutex touched only by
//! its owning thread on the write side, so there is no cross-thread
//! contention on the hot path — exporters take the locks briefly when
//! draining. Rings are bounded ([`RING_CAP`] events, oldest overwritten,
//! drops counted), and the logs of exited threads are folded into one
//! bounded retirement ring, so memory stays O(threads + caps) no matter
//! how long the process runs or how many shard workers come and go.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Per-thread ring capacity, in span events.
pub const RING_CAP: usize = 8192;
/// Retirement ring capacity (events inherited from exited threads).
pub const RETIRED_CAP: usize = 65536;
/// Live thread logs kept before dead ones are folded into the retirement
/// ring (a sharded replay retires its worker threads at every call, so
/// a long-running daemon would otherwise accumulate logs forever).
const MAX_LIVE_LOGS: usize = 64;
/// Thread-name labels kept; oldest tids are pruned past this.
const MAX_THREAD_NAMES: usize = 1024;

/// One completed span, as drained by an exporter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static for fixed instrumentation points, owned for
    /// dynamic ones such as `shard-3` or routine names).
    pub name: Cow<'static, str>,
    /// Category (Chrome's `cat` field) — groups related spans in the UI.
    pub cat: &'static str,
    /// Track id: a small process-unique id of the recording thread.
    pub tid: u64,
    /// Start time, nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Distributed-trace correlation id (0 = untagged). Spans opened
    /// inside a [`with_job`] scope inherit the scope's id, so one
    /// request's hops across fleet peers share a key.
    pub job_id: u64,
}

struct ThreadLog {
    tid: u64,
    ring: Mutex<VecDeque<SpanEvent>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static THREADS: Mutex<Vec<Arc<ThreadLog>>> = Mutex::new(Vec::new());
static RETIRED: Mutex<VecDeque<SpanEvent>> = Mutex::new(VecDeque::new());
static NAMES: Mutex<BTreeMap<u64, String>> = Mutex::new(BTreeMap::new());

thread_local! {
    static LOG: Arc<ThreadLog> = register_thread();
    static CURRENT_JOB: Cell<u64> = const { Cell::new(0) };
}

fn register_thread() -> Arc<ThreadLog> {
    let log = Arc::new(ThreadLog {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        ring: Mutex::new(VecDeque::new()),
    });
    let mut threads = lock(&THREADS);
    threads.push(Arc::clone(&log));
    if threads.len() > MAX_LIVE_LOGS {
        retire_dead(&mut threads);
    }
    log
}

/// Fold the rings of exited threads (strong count 1: only the registry
/// still holds them) into the bounded retirement ring.
fn retire_dead(threads: &mut Vec<Arc<ThreadLog>>) {
    let mut retired = lock(&RETIRED);
    threads.retain(|t| {
        if Arc::strong_count(t) > 1 {
            return true;
        }
        let mut ring = lock(&t.ring);
        for ev in ring.drain(..) {
            if retired.len() >= RETIRED_CAP {
                retired.pop_front();
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
            retired.push_back(ev);
        }
        false
    });
}

fn record(ev: SpanEvent) {
    LOG.with(|log| {
        let mut ring = lock(&log.ring);
        if ring.len() >= RING_CAP {
            ring.pop_front();
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    });
}

/// The calling thread's track id (registers the thread on first use).
pub fn current_tid() -> u64 {
    LOG.with(|log| log.tid)
}

/// Label the calling thread's track in exported traces (Chrome's
/// `thread_name` metadata). A no-op while disabled.
pub fn set_thread_name(name: impl Into<String>) {
    if !crate::enabled() {
        return;
    }
    let tid = current_tid();
    let mut names = lock(&NAMES);
    names.insert(tid, name.into());
    while names.len() > MAX_THREAD_NAMES {
        let Some((&oldest, _)) = names.iter().next() else {
            break;
        };
        names.remove(&oldest);
    }
}

/// Snapshot of the thread-name labels (tid → name).
pub fn thread_names() -> BTreeMap<u64, String> {
    lock(&NAMES).clone()
}

/// Spans lost to ring overwrites since the process started.
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// The calling thread's current job tag (0 when outside any
/// [`with_job`] scope).
pub fn current_job() -> u64 {
    CURRENT_JOB.with(Cell::get)
}

/// Tags every span the calling thread opens while the guard lives with
/// `job_id`; restores the previous tag on drop (scopes nest). Tagging is
/// thread-local state only — it costs nothing while disabled and is safe
/// to set unconditionally on request-handling paths.
pub fn with_job(job_id: u64) -> JobGuard {
    JobGuard {
        prev: CURRENT_JOB.with(|c| c.replace(job_id)),
    }
}

/// RAII scope from [`with_job`]: restores the thread's previous job tag
/// when dropped.
#[must_use = "the job tag applies for the guard's lifetime; an unbound guard drops immediately"]
pub struct JobGuard {
    prev: u64,
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        CURRENT_JOB.with(|c| c.set(self.prev));
    }
}

/// An in-flight span; records its event when dropped. Inert (no clock
/// reads, no allocation for static names) while observability is disabled.
#[must_use = "a span measures the scope it is bound to; an unbound guard drops immediately"]
pub struct SpanGuard {
    /// `None` when instrumentation was disabled at creation.
    name: Option<Cow<'static, str>>,
    cat: &'static str,
    start_ns: u64,
    job_id: u64,
}

impl SpanGuard {
    fn new(name: Option<Cow<'static, str>>, cat: &'static str) -> SpanGuard {
        let (start_ns, job_id) = if name.is_some() {
            (crate::now_ns(), current_job())
        } else {
            (0, 0)
        };
        SpanGuard {
            name,
            cat,
            start_ns,
            job_id,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            let end = crate::now_ns();
            record(SpanEvent {
                name,
                cat: self.cat,
                tid: current_tid(),
                start_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
                job_id: self.job_id,
            });
        }
    }
}

/// Open a span with a static name. The usual form for fixed
/// instrumentation points (`span("replay", "replay")`).
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    if crate::enabled() {
        SpanGuard::new(Some(Cow::Borrowed(name)), cat)
    } else {
        SpanGuard::new(None, cat)
    }
}

/// Open a span with a computed name (shard indices, routine names…). The
/// name is only materialised when observability is enabled, so call sites
/// may pass `format!(…)` results without paying for them while disabled —
/// prefer `span_named(|| format!(…), cat)`-style laziness at the caller by
/// guarding on [`crate::enabled`] when the formatting itself is hot.
#[inline]
pub fn span_named(name: impl Into<String>, cat: &'static str) -> SpanGuard {
    if crate::enabled() {
        SpanGuard::new(Some(Cow::Owned(name.into())), cat)
    } else {
        SpanGuard::new(None, cat)
    }
}

/// Drain every recorded span (live rings and the retirement ring), sorted
/// by start time then track id. The log is empty afterwards; exporters
/// call this exactly once per report.
pub fn drain_spans() -> Vec<SpanEvent> {
    let mut out: Vec<SpanEvent> = lock(&RETIRED).drain(..).collect();
    let threads = lock(&THREADS);
    for t in threads.iter() {
        out.extend(lock(&t.ring).drain(..));
    }
    drop(threads);
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

/// Copy every recorded span (live rings and the retirement ring) without
/// clearing anything, sorted like [`drain_spans`]. This is the form a
/// live daemon exports over the wire: repeated trace requests see
/// overlapping history instead of stealing spans from each other (and
/// from a later `--trace-out` drain).
pub fn snapshot_spans() -> Vec<SpanEvent> {
    let mut out: Vec<SpanEvent> = lock(&RETIRED).iter().cloned().collect();
    let threads = lock(&THREADS);
    for t in threads.iter() {
        out.extend(lock(&t.ring).iter().cloned());
    }
    drop(threads);
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn spans_record_name_track_and_duration() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        drain_spans();
        {
            let _outer = span("outer", "test");
            let _inner = span_named(format!("inner-{}", 7), "test");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let evs = drain_spans();
        let outer = evs.iter().find(|e| e.name == "outer").expect("outer");
        let inner = evs.iter().find(|e| e.name == "inner-7").expect("inner");
        assert_eq!(outer.cat, "test");
        assert_eq!(outer.tid, inner.tid, "same thread, same track");
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.dur_ns >= inner.dur_ns, "outer encloses inner");
        assert!(outer.dur_ns >= 1_000_000, "slept ≥ 1ms");
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        drain_spans();
        crate::set_enabled(false);
        {
            let _s = span("ghost", "test");
            let _d = span_named(String::from("ghost-dyn"), "test");
        }
        crate::set_enabled(true);
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn worker_threads_get_distinct_tracks_and_survive_exit() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        drain_spans();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    set_thread_name(format!("worker-{i}"));
                    let _s = span_named(format!("work-{i}"), "test");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let evs = drain_spans();
        let tids: std::collections::BTreeSet<u64> = evs
            .iter()
            .filter(|e| e.name.starts_with("work-"))
            .map(|e| e.tid)
            .collect();
        assert_eq!(tids.len(), 3, "one track per worker thread");
        let names = thread_names();
        assert!(tids.iter().all(|t| names.get(t).is_some()));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        drain_spans();
        let before = dropped_spans();
        for i in 0..(RING_CAP + 10) {
            let _s = span_named(format!("s{i}"), "test");
        }
        let evs = drain_spans();
        assert_eq!(evs.len(), RING_CAP);
        assert!(dropped_spans() >= before + 10);
        // The survivors are the newest spans.
        assert!(evs.iter().all(|e| e.name != "s0"));
    }

    #[test]
    fn job_scopes_tag_and_nest_and_restore() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        drain_spans();
        assert_eq!(current_job(), 0);
        {
            let _outer_scope = with_job(0xAB);
            let _a = span("a", "test");
            {
                let _inner_scope = with_job(0xCD);
                let _b = span("b", "test");
            }
            assert_eq!(current_job(), 0xAB, "inner scope restored on drop");
            let _c = span("c", "test");
        }
        assert_eq!(current_job(), 0);
        let _d = span("d", "test");
        drop(_d);
        let evs = drain_spans();
        let job_of = |name: &str| evs.iter().find(|e| e.name == name).unwrap().job_id;
        assert_eq!(job_of("a"), 0xAB);
        assert_eq!(job_of("b"), 0xCD);
        assert_eq!(job_of("c"), 0xAB);
        assert_eq!(job_of("d"), 0, "outside any scope spans stay untagged");
    }

    #[test]
    fn snapshot_is_non_destructive() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        drain_spans();
        {
            let _s = span("kept", "test");
        }
        let snap1 = snapshot_spans();
        let snap2 = snapshot_spans();
        assert_eq!(snap1.len(), 1);
        assert_eq!(snap1, snap2, "snapshots repeat");
        let drained = drain_spans();
        assert_eq!(drained.len(), 1, "drain still sees the span");
        assert!(
            snapshot_spans().is_empty(),
            "drain clears what snapshot saw"
        );
    }

    #[test]
    fn drained_spans_are_sorted_by_start() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        drain_spans();
        for _ in 0..50 {
            let _s = span("tick", "test");
        }
        let evs = drain_spans();
        assert!(evs.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }
}
