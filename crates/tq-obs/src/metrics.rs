//! Process-global metrics: monotonic counters, gauges and log₂ histograms.
//!
//! Handles are cheap `Arc`-wrapped atomics: call sites register once (a
//! short registry lock) and update lock-free afterwards. The registry is
//! keyed by metric name with `BTreeMap`, so the text exposition is emitted
//! in a stable, sorted order — byte-identical for identical values, which
//! keeps the `metrics` endpoint testable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of log₂ histogram buckets; bucket `i` holds values in
/// `[2^i, 2^(i+1))` (bucket 0 also holds 0), the last is open-ended.
/// 28 buckets cover one nanosecond-to-minutes range in microseconds.
pub const HISTO_BUCKETS: usize = 28;

/// A monotonic counter. Clone freely; all clones share one cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one. A relaxed load and a branch while disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (queue depths,
/// resident bytes). Clone freely; all clones share one cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.0.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCells {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂ histogram of non-negative integer observations (typically
/// microseconds). Clone freely; all clones share the cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let idx = (63 - v.max(1).leading_zeros() as usize).min(HISTO_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    help: &'static str,
    metric: Metric,
}

static REGISTRY: Mutex<BTreeMap<&'static str, Entry>> = Mutex::new(BTreeMap::new());

fn registry() -> MutexGuard<'static, BTreeMap<&'static str, Entry>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Register (or fetch) the counter `name`. Registration is idempotent:
/// every call site for one name shares the same cell.
///
/// Panics if `name` is already registered as a different metric kind —
/// that is a programming error, not an operational condition.
pub fn counter(name: &'static str, help: &'static str) -> Counter {
    let mut reg = registry();
    let entry = reg.entry(name).or_insert_with(|| Entry {
        help,
        metric: Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))),
    });
    match &entry.metric {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Register (or fetch) the gauge `name`. See [`counter`] for semantics.
pub fn gauge(name: &'static str, help: &'static str) -> Gauge {
    let mut reg = registry();
    let entry = reg.entry(name).or_insert_with(|| Entry {
        help,
        metric: Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))),
    });
    match &entry.metric {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Register (or fetch) the histogram `name`. See [`counter`] for semantics.
pub fn histogram(name: &'static str, help: &'static str) -> Histogram {
    let mut reg = registry();
    let entry = reg.entry(name).or_insert_with(|| Entry {
        help,
        metric: Metric::Histogram(Histogram(Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))),
    });
    match &entry.metric {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// Render every registered metric as Prometheus-style text exposition
/// (`# HELP` / `# TYPE` comments, `_bucket{le="…"}` cumulative histogram
/// lines, sorted by metric name). Includes `tq_obs_spans_dropped_total`,
/// the layer's own loss counter.
pub fn prometheus_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let reg = registry();
    for (name, entry) in reg.iter() {
        let _ = writeln!(out, "# HELP {name} {}", entry.help);
        match &entry.metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", g.get());
            }
            Metric::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (i, b) in h.0.buckets.iter().enumerate() {
                    cumulative += b.load(Ordering::Relaxed);
                    if i + 1 == HISTO_BUCKETS {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    } else {
                        // Bucket i holds integer values < 2^(i+1); the
                        // inclusive upper bound is 2^(i+1)-1.
                        let le = (1u64 << (i + 1)) - 1;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                }
                let _ = writeln!(out, "{name}_sum {}", h.sum());
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    drop(reg);
    let dropped = crate::span::dropped_spans();
    let _ = writeln!(
        out,
        "# HELP tq_obs_spans_dropped_total Span events lost to ring-buffer overwrites\n\
         # TYPE tq_obs_spans_dropped_total counter\n\
         tq_obs_spans_dropped_total {dropped}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counters_share_cells_by_name() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        let a = counter("test_shared_total", "shared cell");
        let b = counter("test_shared_total", "shared cell");
        let before = a.get();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), before + 3);
    }

    #[test]
    fn disabled_metrics_do_not_move() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        let c = counter("test_gated_total", "gated");
        let g = gauge("test_gated_gauge", "gated");
        let h = histogram("test_gated_histo", "gated");
        let (c0, g0, h0) = (c.get(), g.get(), h.count());
        crate::set_enabled(false);
        c.inc();
        g.set(99);
        h.observe(5);
        crate::set_enabled(true);
        assert_eq!((c.get(), g.get(), h.count()), (c0, g0, h0));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        let h = histogram("test_histo_micros", "log2 test");
        for v in [0, 1, 2, 3, 4, 1 << 20, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        let text = prometheus_text();
        // Values 0 and 1 land in bucket 0 (le="1"); 2 and 3 raise the
        // cumulative le="3" line to 4.
        assert!(text.contains("test_histo_micros_bucket{le=\"1\"} 2"));
        assert!(text.contains("test_histo_micros_bucket{le=\"3\"} 4"));
        assert!(text.contains("test_histo_micros_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("test_histo_micros_count 7"));
    }

    #[test]
    fn exposition_format_shape() {
        let _g = test_lock::hold();
        crate::set_enabled(true);
        let c = counter("test_expo_total", "an example counter");
        c.add(5);
        gauge("test_expo_gauge", "an example gauge").set(-3);
        let text = prometheus_text();
        assert!(text.contains("# HELP test_expo_total an example counter"));
        assert!(text.contains("# TYPE test_expo_total counter"));
        assert!(text.contains("# TYPE test_expo_gauge gauge"));
        assert!(text.contains("test_expo_gauge -3"));
        assert!(text.contains("tq_obs_spans_dropped_total"));
        // Sorted by name: the gauge section precedes the counter section
        // ("test_expo_gauge" < "test_expo_total" lexicographically).
        let gpos = text.find("# TYPE test_expo_gauge").unwrap();
        let cpos = text.find("# TYPE test_expo_total").unwrap();
        assert!(gpos < cpos);
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<i64>().is_ok() || value.parse::<f64>().is_ok(),
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let _c = counter("test_kind_clash", "first as counter");
        let _g = gauge("test_kind_clash", "then as gauge");
    }
}
