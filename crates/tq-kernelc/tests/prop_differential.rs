//! Randomised differential testing: random expression trees and random
//! straight-line programs must evaluate identically in the reference
//! interpreter and on the VM.
//!
//! Formerly proptest-based; now deterministic sweeps driven by the vendored
//! [`tq_isa::prng::Rng`] (zero external crates). `heavy-tests` multiplies
//! the iteration counts.

use tq_isa::prng::Rng;
use tq_kernelc::dsl::*;
use tq_kernelc::{compile, ElemTy, Expr, Function, GlobalInit, Interp, Module};
use tq_vm::Vm;

fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 16
    } else {
        base
    }
}

/// Random integer expression over variables `v0`, `v1`, `v2` (declared with
/// fixed seeds by the harness). Depth-bounded so register pools suffice.
fn int_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.chance(0.3) {
        return match rng.index(4) {
            0 => ci(rng.i64_in(-1000, 1000)),
            1 => ci(rng.next_u64() as i64),
            2 => v("v0"),
            _ => {
                if rng.chance(0.5) {
                    v("v1")
                } else {
                    v("v2")
                }
            }
        };
    }
    let a = int_expr(rng, depth - 1);
    match rng.index(15) {
        0 => add(a, int_expr(rng, depth - 1)),
        1 => sub(a, int_expr(rng, depth - 1)),
        2 => mul(a, int_expr(rng, depth - 1)),
        3 => div(a, int_expr(rng, depth - 1)),
        4 => rem(a, int_expr(rng, depth - 1)),
        5 => band(a, int_expr(rng, depth - 1)),
        6 => bor(a, int_expr(rng, depth - 1)),
        7 => bxor(a, int_expr(rng, depth - 1)),
        8 => shl(a, ci(rng.i64_in(0, 63))),
        9 => shr(a, ci(rng.i64_in(0, 63))),
        10 => lt(a, int_expr(rng, depth - 1)),
        11 => le(a, int_expr(rng, depth - 1)),
        12 => eq(a, int_expr(rng, depth - 1)),
        13 => ne(a, int_expr(rng, depth - 1)),
        _ => neg(a),
    }
}

/// Random float expression over `f0`, `f1` and literals.
fn float_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.chance(0.3) {
        return match rng.index(4) {
            0 => cf(rng.f64_in(-100.0, 100.0)),
            1 => cf(0.1),
            2 => v("f0"),
            _ => {
                if rng.chance(0.5) {
                    cf(1.0)
                } else {
                    v("f1")
                }
            }
        };
    }
    let a = float_expr(rng, depth - 1);
    match rng.index(8) {
        0 => add(a, float_expr(rng, depth - 1)),
        1 => sub(a, float_expr(rng, depth - 1)),
        2 => mul(a, float_expr(rng, depth - 1)),
        3 => div(a, float_expr(rng, depth - 1)),
        4 => fmin(a, float_expr(rng, depth - 1)),
        5 => fmax(a, float_expr(rng, depth - 1)),
        6 => neg(a),
        _ => fabs(a),
    }
}

fn run_both_and_compare(m: &Module) {
    let mut interp = Interp::new(m);
    interp.set_step_limit(1_000_000);
    let ref_exit = interp.run().expect("reference run");

    let compiled = compile(m).expect("compiles");
    let mut vm = Vm::new(compiled.program).expect("loads");
    let exit = vm.run(Some(10_000_000)).expect("vm run");
    let vm_exit = match exit.reason {
        tq_vm::ExitReason::Exited(c) => c,
        tq_vm::ExitReason::Halted => 0,
    };
    assert_eq!(vm_exit, ref_exit);

    for g in &m.globals {
        let slot = compiled.layout.get(&g.name).unwrap();
        let size = slot.size() as usize;
        let mut a = vec![0u8; size];
        vm.mem_read(slot.addr, &mut a).unwrap();
        let mut b = vec![0u8; size];
        interp.mem.read(slot.addr, &mut b).unwrap();
        assert_eq!(a, b, "global `{}` diverges", g.name);
    }
}

#[test]
fn random_int_expressions_agree() {
    let mut rng = Rng::new(0x1207_5001);
    for _ in 0..cases(128) {
        let e = int_expr(&mut rng, 4);
        let (s0, s1) = (rng.next_u64() as i64, rng.next_u64() as i64);
        let s2 = rng.i64_in(-16, 15);
        let mut m = Module::new("p");
        m.global("out", ElemTy::I64, 1, GlobalInit::Zero);
        m.func(Function::new("main").body(vec![
            leti("v0", ci(s0)),
            leti("v1", ci(s1)),
            leti("v2", ci(s2)),
            sti(ga("out"), ci(0), e),
        ]));
        run_both_and_compare(&m);
    }
}

#[test]
fn random_float_expressions_agree() {
    let mut rng = Rng::new(0xF207_5002);
    for _ in 0..cases(128) {
        let e = float_expr(&mut rng, 4);
        let s0 = rng.f64_in(-1.0e6, 1.0e6);
        let s1 = rng.f64_in(-1.0, 1.0);
        let mut m = Module::new("p");
        m.global("out", ElemTy::F64, 1, GlobalInit::Zero);
        m.func(Function::new("main").body(vec![
            letf("f0", cf(s0)),
            letf("f1", cf(s1)),
            stf(ga("out"), ci(0), e),
        ]));
        run_both_and_compare(&m);
    }
}

#[test]
fn random_array_programs_agree() {
    let mut rng = Rng::new(0xA22A_5003);
    for _ in 0..cases(128) {
        // A random straight-line program of stores/loads/adds over a 16-slot
        // array, then a checksum loop.
        let mut body = vec![];
        for _ in 0..1 + rng.index(40) {
            let (i, j, k) = (rng.i64_in(0, 15), rng.i64_in(0, 15), rng.i64_in(-100, 100));
            body.push(match rng.index(4) {
                0 => sti(ga("arr"), ci(i), ci(k)),
                1 => sti(ga("arr"), ci(i), add(ldi(ga("arr"), ci(j)), ci(k))),
                2 => sti(
                    ga("arr"),
                    ci(i),
                    mul(ldi(ga("arr"), ci(j)), ldi(ga("arr"), ci(i))),
                ),
                _ => sti(ga("arr"), ci(i), sub(ci(k), ldi(ga("arr"), ci(j)))),
            });
        }
        body.push(leti("sum", ci(0)));
        body.push(for_(
            "i",
            ci(0),
            ci(16),
            vec![set("sum", add(v("sum"), ldi(ga("arr"), v("i"))))],
        ));
        body.push(sti(ga("chk"), ci(0), v("sum")));

        let mut m = Module::new("p");
        m.global("arr", ElemTy::I64, 16, GlobalInit::Zero);
        m.global("chk", ElemTy::I64, 1, GlobalInit::Zero);
        m.func(Function::new("main").body(body));
        run_both_and_compare(&m);
    }
}

/// Constant folding preserves meaning: the folded module compiles and runs
/// to the same result as the original.
#[test]
fn folding_preserves_semantics() {
    let mut rng = Rng::new(0xF01D_5004);
    for _ in 0..cases(128) {
        let e = int_expr(&mut rng, 4);
        let fe = float_expr(&mut rng, 4);
        let s0 = rng.next_u64() as i64;
        let s1 = rng.f64_in(-1.0e3, 1.0e3);
        let mut m = Module::new("p");
        m.global("out", ElemTy::I64, 1, GlobalInit::Zero);
        m.global("fout", ElemTy::F64, 1, GlobalInit::Zero);
        m.func(Function::new("main").body(vec![
            leti("v0", ci(s0)),
            leti("v1", ci(s0 ^ 0x55)),
            leti("v2", ci(s0 % 17)),
            letf("f0", cf(s1)),
            letf("f1", cf(-s1)),
            sti(ga("out"), ci(0), e),
            stf(ga("fout"), ci(0), fe),
        ]));
        let folded = tq_kernelc::fold_module(&m);

        // Run the ORIGINAL on the interpreter, the FOLDED on the VM.
        let mut interp = Interp::new(&m);
        interp.set_step_limit(1_000_000);
        let ref_exit = interp.run().expect("reference run");

        let compiled = compile(&folded).expect("folded module compiles");
        let mut vm = Vm::new(compiled.program).expect("loads");
        let exit = vm.run(Some(10_000_000)).expect("vm run");
        let vm_exit = match exit.reason {
            tq_vm::ExitReason::Exited(c) => c,
            tq_vm::ExitReason::Halted => 0,
        };
        assert_eq!(vm_exit, ref_exit);

        for g in &m.globals {
            let slot = compiled.layout.get(&g.name).unwrap();
            let size = slot.size() as usize;
            let mut a = vec![0u8; size];
            vm.mem_read(slot.addr, &mut a).unwrap();
            let mut b = vec![0u8; size];
            interp.mem.read(slot.addr, &mut b).unwrap();
            assert_eq!(a, b, "global `{}` diverges after folding", &g.name);
        }
    }
}
