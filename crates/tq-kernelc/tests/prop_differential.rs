//! Property-based differential testing: random expression trees and random
//! straight-line programs must evaluate identically in the reference
//! interpreter and on the VM.

use proptest::prelude::*;
use tq_kernelc::dsl::*;
use tq_kernelc::{compile, ElemTy, Expr, Function, GlobalInit, Interp, Module};
use tq_vm::Vm;

/// Random integer expression over variables `v0`, `v1`, `v2` (declared with
/// fixed seeds by the harness). Depth-bounded so register pools suffice.
fn int_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(ci),
        any::<i64>().prop_map(ci),
        Just(v("v0")),
        Just(v("v1")),
        Just(v("v2")),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| div(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| rem(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| band(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| bor(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| bxor(a, b)),
            (inner.clone(), 0i64..64).prop_map(|(a, s)| shl(a, ci(s))),
            (inner.clone(), 0i64..64).prop_map(|(a, s)| shr(a, ci(s))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| lt(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| le(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| eq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ne(a, b)),
            inner.clone().prop_map(neg),
        ]
    })
}

/// Random float expression over `f0`, `f1` and literals.
fn float_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100.0f64..100.0).prop_map(cf),
        Just(cf(0.1)),
        Just(cf(1.0)),
        Just(v("f0")),
        Just(v("f1")),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| div(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| fmin(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| fmax(a, b)),
            inner.clone().prop_map(neg),
            inner.clone().prop_map(fabs),
        ]
    })
}

fn run_both_and_compare(m: &Module) {
    let mut interp = Interp::new(m);
    interp.set_step_limit(1_000_000);
    let ref_exit = interp.run().expect("reference run");

    let compiled = compile(m).expect("compiles");
    let mut vm = Vm::new(compiled.program).expect("loads");
    let exit = vm.run(Some(10_000_000)).expect("vm run");
    let vm_exit = match exit.reason {
        tq_vm::ExitReason::Exited(c) => c,
        tq_vm::ExitReason::Halted => 0,
    };
    assert_eq!(vm_exit, ref_exit);

    for g in &m.globals {
        let slot = compiled.layout.get(&g.name).unwrap();
        let size = slot.size() as usize;
        let mut a = vec![0u8; size];
        vm.mem_read(slot.addr, &mut a).unwrap();
        let mut b = vec![0u8; size];
        interp.mem.read(slot.addr, &mut b).unwrap();
        assert_eq!(a, b, "global `{}` diverges", g.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_int_expressions_agree(e in int_expr(4), s0 in any::<i64>(), s1 in any::<i64>(), s2 in -16i64..16) {
        let mut m = Module::new("p");
        m.global("out", ElemTy::I64, 1, GlobalInit::Zero);
        m.func(Function::new("main").body(vec![
            leti("v0", ci(s0)),
            leti("v1", ci(s1)),
            leti("v2", ci(s2)),
            sti(ga("out"), ci(0), e),
        ]));
        run_both_and_compare(&m);
    }

    #[test]
    fn random_float_expressions_agree(e in float_expr(4), s0 in -1.0e6f64..1.0e6, s1 in -1.0f64..1.0) {
        let mut m = Module::new("p");
        m.global("out", ElemTy::F64, 1, GlobalInit::Zero);
        m.func(Function::new("main").body(vec![
            letf("f0", cf(s0)),
            letf("f1", cf(s1)),
            stf(ga("out"), ci(0), e),
        ]));
        run_both_and_compare(&m);
    }

    #[test]
    fn random_array_programs_agree(
        ops in prop::collection::vec((0u8..4, 0i64..16, 0i64..16, -100i64..100), 1..40),
    ) {
        // A random straight-line program of stores/loads/adds over a 16-slot
        // array, then a checksum loop.
        let mut body = vec![];
        for (kind, i, j, k) in ops {
            body.push(match kind {
                0 => sti(ga("arr"), ci(i), ci(k)),
                1 => sti(ga("arr"), ci(i), add(ldi(ga("arr"), ci(j)), ci(k))),
                2 => sti(ga("arr"), ci(i), mul(ldi(ga("arr"), ci(j)), ldi(ga("arr"), ci(i)))),
                _ => sti(ga("arr"), ci(i), sub(ci(k), ldi(ga("arr"), ci(j)))),
            });
        }
        body.push(leti("sum", ci(0)));
        body.push(for_("i", ci(0), ci(16), vec![
            set("sum", add(v("sum"), ldi(ga("arr"), v("i")))),
        ]));
        body.push(sti(ga("chk"), ci(0), v("sum")));

        let mut m = Module::new("p");
        m.global("arr", ElemTy::I64, 16, GlobalInit::Zero);
        m.global("chk", ElemTy::I64, 1, GlobalInit::Zero);
        m.func(Function::new("main").body(body));
        run_both_and_compare(&m);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Constant folding preserves meaning: the folded module compiles and
    /// runs to the same result as the original.
    #[test]
    fn folding_preserves_semantics(e in int_expr(4), fe in float_expr(4), s0 in any::<i64>(), s1 in -1.0e3f64..1.0e3) {
        let mut m = Module::new("p");
        m.global("out", ElemTy::I64, 1, GlobalInit::Zero);
        m.global("fout", ElemTy::F64, 1, GlobalInit::Zero);
        m.func(Function::new("main").body(vec![
            leti("v0", ci(s0)),
            leti("v1", ci(s0 ^ 0x55)),
            leti("v2", ci(s0 % 17)),
            letf("f0", cf(s1)),
            letf("f1", cf(-s1)),
            sti(ga("out"), ci(0), e),
            stf(ga("fout"), ci(0), fe),
        ]));
        let folded = tq_kernelc::fold_module(&m);

        // Run the ORIGINAL on the interpreter, the FOLDED on the VM.
        let mut interp = Interp::new(&m);
        interp.set_step_limit(1_000_000);
        let ref_exit = interp.run().expect("reference run");

        let compiled = compile(&folded).expect("folded module compiles");
        let mut vm = Vm::new(compiled.program).expect("loads");
        let exit = vm.run(Some(10_000_000)).expect("vm run");
        let vm_exit = match exit.reason {
            tq_vm::ExitReason::Exited(c) => c,
            tq_vm::ExitReason::Halted => 0,
        };
        prop_assert_eq!(vm_exit, ref_exit);

        for g in &m.globals {
            let slot = compiled.layout.get(&g.name).unwrap();
            let size = slot.size() as usize;
            let mut a = vec![0u8; size];
            vm.mem_read(slot.addr, &mut a).unwrap();
            let mut b = vec![0u8; size];
            interp.mem.read(slot.addr, &mut b).unwrap();
            prop_assert_eq!(a, b, "global `{}` diverges after folding", &g.name);
        }
    }
}
