//! Error-path coverage for the compiler front end: every rejection the
//! checker and code generator promise actually fires.

use tq_kernelc::dsl::*;
use tq_kernelc::{check, compile, CompileError, ElemTy, Expr, Function, GlobalInit, Module, Ty};

fn with_main(body: Vec<tq_kernelc::Stmt>) -> Module {
    let mut m = Module::new("t");
    m.global("g", ElemTy::I64, 4, GlobalInit::Zero);
    m.func(Function::new("main").body(body));
    m
}

#[test]
fn too_many_int_args_rejected() {
    let mut m = Module::new("t");
    let mut f = Function::new("f");
    for i in 0..7 {
        f = f.param(format!("a{i}"), Ty::I64);
    }
    m.func(f);
    m.func(Function::new("main"));
    assert!(matches!(check(&m), Err(CompileError::TooManyArgs(_))));
}

#[test]
fn too_many_float_args_in_host_call_rejected() {
    let args: Vec<Expr> = (0..7).map(|i| cf(i as f64)).collect();
    let m = with_main(vec![host(tq_isa::HostFn::PrintF64, args)]);
    assert!(matches!(check(&m), Err(CompileError::TooManyArgs(_))));
}

#[test]
fn expression_deeper_than_the_register_file_rejected() {
    // A left-leaning addition chain deep enough to exhaust the 10 scratch
    // registers: each pending operand holds one.
    let mut e = v("x");
    for _ in 0..16 {
        e = add(ci(1), e); // right-recursive: lhs const held while rhs recurses
    }
    let m = with_main(vec![leti("x", ci(0)), leti("y", e)]);
    check(&m).expect("checker does not bound depth");
    assert!(matches!(compile(&m), Err(CompileError::ExprTooDeep(_))));
}

#[test]
fn shallow_right_recursion_is_fine() {
    let mut e = v("x");
    for _ in 0..6 {
        e = add(ci(1), e);
    }
    let m = with_main(vec![leti("x", ci(0)), leti("y", e)]);
    compile(&m).expect("six pending operands fit the pool");
}

#[test]
fn duplicate_function_rejected() {
    let mut m = Module::new("t");
    m.func(Function::new("f"));
    m.func(Function::new("f"));
    m.func(Function::new("main"));
    assert!(matches!(check(&m), Err(CompileError::DuplicateFunction(_))));
}

#[test]
fn duplicate_global_rejected() {
    let mut m = Module::new("t");
    m.global("g", ElemTy::I64, 1, GlobalInit::Zero);
    m.global("g", ElemTy::F64, 1, GlobalInit::Zero);
    m.func(Function::new("main"));
    assert!(matches!(check(&m), Err(CompileError::DuplicateGlobal(_))));
}

#[test]
fn void_callee_result_binding_rejected() {
    let mut m = Module::new("t");
    m.func(Function::new("void_fn"));
    m.func(Function::new("main").body(vec![leti("r", ci(0)), call_ret("r", "void_fn", vec![])]));
    assert!(matches!(check(&m), Err(CompileError::TypeMismatch { .. })));
}

#[test]
fn host_result_into_float_rejected() {
    let m = with_main(vec![
        letf("r", cf(0.0)),
        host_ret("r", tq_isa::HostFn::Icount, vec![]),
    ]);
    assert!(matches!(check(&m), Err(CompileError::TypeMismatch { .. })));
}

#[test]
fn wrong_return_arity_rejected() {
    let mut m = Module::new("t");
    m.func(Function::new("f").returns(Ty::I64).body(vec![ret_void()]));
    m.func(Function::new("main"));
    assert!(matches!(check(&m), Err(CompileError::TypeMismatch { .. })));

    let mut m2 = Module::new("t");
    m2.func(Function::new("f").body(vec![ret(ci(1))]));
    m2.func(Function::new("main"));
    assert!(matches!(check(&m2), Err(CompileError::TypeMismatch { .. })));
}

#[test]
fn compiled_error_messages_render() {
    // Display impls are part of the public surface.
    let msgs = [
        CompileError::NoMain.to_string(),
        CompileError::ExprTooDeep("f".into()).to_string(),
        CompileError::BreakOutsideLoop("f".into()).to_string(),
        CompileError::UnknownVar("f".into(), "x".into()).to_string(),
        CompileError::LibraryCallsMain {
            lib: "l".into(),
            callee: "c".into(),
        }
        .to_string(),
    ];
    for m in msgs {
        assert!(!m.is_empty());
    }
}
