//! Differential testing: every module is executed twice — by the reference
//! AST interpreter and by the VM running the compiled code — and the
//! observable results (exit code, console output, global memory contents)
//! must match bit-for-bit.

use tq_kernelc::dsl::*;
use tq_kernelc::{compile, ElemTy, Function, GlobalInit, Interp, Module, Ty};
use tq_vm::Vm;

/// Run a module both ways and compare observables. Returns (exit code,
/// console) for extra assertions.
fn run_both(module: &Module, files: &[(&str, Vec<u8>)]) -> (i64, String) {
    // Reference execution.
    let mut interp = Interp::new(module);
    interp.set_step_limit(50_000_000);
    for (name, bytes) in files {
        interp.fs.add_file(*name, bytes.clone());
    }
    let ref_exit = interp.run().expect("reference execution succeeds");

    // Compiled execution.
    let compiled = compile(module).expect("module compiles");
    let mut vm = Vm::new(compiled.program).expect("program loads");
    for (name, bytes) in files {
        vm.fs_mut().add_file(*name, bytes.clone());
    }
    let exit = vm.run(Some(200_000_000)).expect("VM execution succeeds");
    let vm_exit = match exit.reason {
        tq_vm::ExitReason::Exited(c) => c,
        tq_vm::ExitReason::Halted => 0,
    };

    assert_eq!(vm_exit, ref_exit, "exit codes diverge");
    assert_eq!(vm.console(), interp.fs.console(), "console output diverges");

    // Compare every global array byte-for-byte.
    for g in &module.globals {
        let slot = compiled.layout.get(&g.name).unwrap();
        let size = slot.size() as usize;
        let mut vm_bytes = vec![0u8; size];
        vm.mem_read(slot.addr, &mut vm_bytes).unwrap();
        let mut ref_bytes = vec![0u8; size];
        interp.mem.read(slot.addr, &mut ref_bytes).unwrap();
        assert_eq!(vm_bytes, ref_bytes, "global `{}` diverges", g.name);
    }

    // Output files must match too.
    for name in interp.fs.file_names() {
        assert_eq!(
            vm.fs().file(name),
            interp.fs.file(name),
            "file `{name}` diverges"
        );
    }

    (vm_exit, vm.console().to_string())
}

#[test]
fn arithmetic_kitchen_sink() {
    let mut m = Module::new("t");
    m.global("out", ElemTy::I64, 16, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        leti("a", ci(1000)),
        leti("b", ci(-7)),
        sti(ga("out"), ci(0), add(v("a"), v("b"))),
        sti(ga("out"), ci(1), sub(v("a"), v("b"))),
        sti(ga("out"), ci(2), mul(v("a"), v("b"))),
        sti(ga("out"), ci(3), div(v("a"), v("b"))),
        sti(ga("out"), ci(4), rem(v("a"), v("b"))),
        sti(ga("out"), ci(5), div(v("a"), ci(0))), // ÷0 → 0
        sti(ga("out"), ci(6), band(v("a"), ci(0xFF))),
        sti(ga("out"), ci(7), bor(v("a"), ci(0x10000))),
        sti(ga("out"), ci(8), bxor(v("a"), ci(-1))),
        sti(ga("out"), ci(9), shl(v("a"), ci(3))),
        sti(ga("out"), ci(10), shr(v("b"), ci(1))), // logical shift of negative
        sti(ga("out"), ci(11), lt(v("b"), v("a"))),
        sti(ga("out"), ci(12), ge(v("b"), v("a"))),
        sti(ga("out"), ci(13), eq(v("a"), ci(1000))),
        sti(ga("out"), ci(14), ne(v("a"), ci(1000))),
        sti(ga("out"), ci(15), neg(v("a"))),
    ]));
    run_both(&m, &[]);
}

#[test]
fn float_arithmetic_and_intrinsics() {
    let mut m = Module::new("t");
    m.global("out", ElemTy::F64, 12, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        letf("x", cf(2.5)),
        letf("y", cf(-0.75)),
        stf(ga("out"), ci(0), add(v("x"), v("y"))),
        stf(ga("out"), ci(1), sub(v("x"), v("y"))),
        stf(ga("out"), ci(2), mul(v("x"), v("y"))),
        stf(ga("out"), ci(3), div(v("x"), v("y"))),
        stf(ga("out"), ci(4), sqrt(v("x"))),
        stf(ga("out"), ci(5), sin(v("x"))),
        stf(ga("out"), ci(6), cos(v("x"))),
        stf(ga("out"), ci(7), fabs(v("y"))),
        stf(ga("out"), ci(8), fmin(v("x"), v("y"))),
        stf(ga("out"), ci(9), fmax(v("x"), v("y"))),
        // 0.1 is NOT exactly representable in f32 — exercises the constant
        // pool path.
        stf(ga("out"), ci(10), cf(0.1)),
        stf(ga("out"), ci(11), i2f(f2i(cf(3.99)))),
    ]));
    run_both(&m, &[]);
}

#[test]
fn element_widths_sign_extension() {
    let mut m = Module::new("t");
    m.global("b8", ElemTy::I8, 4, GlobalInit::Zero);
    m.global("u8", ElemTy::U8, 4, GlobalInit::Zero);
    m.global("b16", ElemTy::I16, 4, GlobalInit::Zero);
    m.global("u16", ElemTy::U16, 4, GlobalInit::Zero);
    m.global("b32", ElemTy::I32, 4, GlobalInit::Zero);
    m.global("u32", ElemTy::U32, 4, GlobalInit::Zero);
    m.global("f32", ElemTy::F32, 4, GlobalInit::Zero);
    m.global("out", ElemTy::I64, 8, GlobalInit::Zero);
    m.global("fout", ElemTy::F64, 2, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        store(ga("b8"), ElemTy::I8, ci(0), ci(-5)),
        store(ga("u8"), ElemTy::U8, ci(0), ci(-5)),
        store(ga("b16"), ElemTy::I16, ci(1), ci(-30000)),
        store(ga("u16"), ElemTy::U16, ci(1), ci(-30000)),
        store(ga("b32"), ElemTy::I32, ci(2), ci(-2_000_000_000)),
        store(ga("u32"), ElemTy::U32, ci(2), ci(-2_000_000_000)),
        store(ga("f32"), ElemTy::F32, ci(3), cf(1.0e-10)), // f32 rounding
        sti(ga("out"), ci(0), load(ga("b8"), ElemTy::I8, ci(0))),
        sti(ga("out"), ci(1), load(ga("u8"), ElemTy::U8, ci(0))),
        sti(ga("out"), ci(2), load(ga("b16"), ElemTy::I16, ci(1))),
        sti(ga("out"), ci(3), load(ga("u16"), ElemTy::U16, ci(1))),
        sti(ga("out"), ci(4), load(ga("b32"), ElemTy::I32, ci(2))),
        sti(ga("out"), ci(5), load(ga("u32"), ElemTy::U32, ci(2))),
        stf(ga("fout"), ci(0), load(ga("f32"), ElemTy::F32, ci(3))),
    ]));
    run_both(&m, &[]);
}

#[test]
fn control_flow_loops_and_conditionals() {
    let mut m = Module::new("t");
    m.global("out", ElemTy::I64, 4, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        // Sum of odds below 100 via while.
        leti("i", ci(0)),
        leti("acc", ci(0)),
        while_(
            lt(v("i"), ci(100)),
            vec![
                if_(
                    eq(rem(v("i"), ci(2)), ci(1)),
                    vec![set("acc", add(v("acc"), v("i")))],
                ),
                set("i", add(v("i"), ci(1))),
            ],
        ),
        sti(ga("out"), ci(0), v("acc")),
        // Nested fors.
        leti("s", ci(0)),
        for_(
            "a",
            ci(0),
            ci(10),
            vec![for_(
                "b",
                ci(0),
                v("a"),
                vec![set("s", add(v("s"), mul(v("a"), v("b"))))],
            )],
        ),
        sti(ga("out"), ci(1), v("s")),
        // If/else chain.
        leti("x", ci(7)),
        if_else(
            gt(v("x"), ci(10)),
            vec![sti(ga("out"), ci(2), ci(1))],
            vec![if_else(
                gt(v("x"), ci(5)),
                vec![sti(ga("out"), ci(2), ci(2))],
                vec![sti(ga("out"), ci(2), ci(3))],
            )],
        ),
        // Empty loop body / zero-trip loop.
        for_("z", ci(5), ci(5), vec![sti(ga("out"), ci(3), ci(99))]),
    ]));
    run_both(&m, &[]);
}

#[test]
fn functions_args_returns_recursion() {
    let mut m = Module::new("t");
    m.global("out", ElemTy::I64, 4, GlobalInit::Zero);
    m.global("fout", ElemTy::F64, 2, GlobalInit::Zero);
    m.func(
        Function::new("fib")
            .param("n", Ty::I64)
            .returns(Ty::I64)
            .body(vec![
                if_(lt(v("n"), ci(2)), vec![ret(v("n"))]),
                leti("a", ci(0)),
                leti("b", ci(0)),
                call_ret("a", "fib", vec![sub(v("n"), ci(1))]),
                call_ret("b", "fib", vec![sub(v("n"), ci(2))]),
                ret(add(v("a"), v("b"))),
            ]),
    );
    m.func(
        Function::new("mix")
            .param("i", Ty::I64)
            .param("x", Ty::F64)
            .param("j", Ty::I64)
            .param("y", Ty::F64)
            .returns(Ty::F64)
            .body(vec![ret(add(
                mul(i2f(add(v("i"), v("j"))), v("x")),
                v("y"),
            ))]),
    );
    m.func(Function::new("main").body(vec![
        leti("r", ci(0)),
        call_ret("r", "fib", vec![ci(15)]),
        sti(ga("out"), ci(0), v("r")),
        letf("f", cf(0.0)),
        call_ret("f", "mix", vec![ci(3), cf(1.5), ci(4), cf(-0.25)]),
        stf(ga("fout"), ci(0), v("f")),
    ]));
    let (exit, _) = run_both(&m, &[]);
    assert_eq!(exit, 0);
}

#[test]
fn library_functions_link_across_images() {
    let mut m = Module::new("t");
    m.global(
        "buf",
        ElemTy::I64,
        8,
        GlobalInit::I64s(vec![9, 8, 7, 6, 5, 4, 3, 2]),
    );
    m.global("dst", ElemTy::I64, 8, GlobalInit::Zero);
    m.func(
        Function::new("lib_copy8")
            .param("dst", Ty::I64)
            .param("src", Ty::I64)
            .param("n", Ty::I64)
            .in_library()
            .body(vec![for_(
                "i",
                ci(0),
                v("n"),
                vec![sti(v("dst"), v("i"), ldi(v("src"), v("i")))],
            )]),
    );
    m.func(Function::new("main").body(vec![call("lib_copy8", vec![ga("dst"), ga("buf"), ci(8)])]));
    run_both(&m, &[]);

    // And the library routine must land in a non-main image.
    let compiled = compile(&m).unwrap();
    assert_eq!(compiled.program.images.len(), 2);
    let lib = compiled.program.images.iter().find(|i| !i.is_main).unwrap();
    assert!(lib.routine_named("lib_copy8").is_some());
}

#[test]
fn host_file_io_roundtrip() {
    let mut m = Module::new("t");
    m.global(
        "path_in",
        ElemTy::U8,
        6,
        GlobalInit::Bytes(b"in.dat".to_vec()),
    );
    m.global(
        "path_out",
        ElemTy::U8,
        7,
        GlobalInit::Bytes(b"out.dat".to_vec()),
    );
    m.global("buf", ElemTy::U8, 64, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        leti("fd", ci(0)),
        host_ret(
            "fd",
            tq_isa::HostFn::FsOpen,
            vec![ga("path_in"), ci(6), ci(0)],
        ),
        leti("n", ci(0)),
        host_ret(
            "n",
            tq_isa::HostFn::FsRead,
            vec![v("fd"), ga("buf"), ci(64)],
        ),
        host(tq_isa::HostFn::FsClose, vec![v("fd")]),
        // Transform: double every byte.
        for_(
            "i",
            ci(0),
            v("n"),
            vec![store(
                ga("buf"),
                ElemTy::U8,
                v("i"),
                mul(load(ga("buf"), ElemTy::U8, v("i")), ci(2)),
            )],
        ),
        leti("fo", ci(0)),
        host_ret(
            "fo",
            tq_isa::HostFn::FsOpen,
            vec![ga("path_out"), ci(7), ci(1)],
        ),
        host(tq_isa::HostFn::FsWrite, vec![v("fo"), ga("buf"), v("n")]),
        host(tq_isa::HostFn::FsClose, vec![v("fo")]),
        host(tq_isa::HostFn::PrintI64, vec![v("n")]),
    ]));
    let (_, console) = run_both(&m, &[("in.dat", vec![1, 2, 3, 10, 20])]);
    assert_eq!(console, "5\n");
}

#[test]
fn main_return_value_becomes_exit_code() {
    let mut m = Module::new("t");
    m.func(
        Function::new("main")
            .returns(Ty::I64)
            .body(vec![ret(ci(17))]),
    );
    let (exit, _) = run_both(&m, &[]);
    assert_eq!(exit, 17);
}

#[test]
fn prefetch_is_semantically_neutral() {
    let mut m = Module::new("t");
    m.global("a", ElemTy::I64, 4, GlobalInit::I64s(vec![1, 2, 3, 4]));
    m.global("out", ElemTy::I64, 1, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        prefetch(ga("a"), ci(2)),
        sti(ga("out"), ci(0), ldi(ga("a"), ci(2))),
    ]));
    run_both(&m, &[]);
}

#[test]
fn for_loop_body_can_modify_induction_var() {
    let mut m = Module::new("t");
    m.global("out", ElemTy::I64, 1, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        leti("acc", ci(0)),
        for_(
            "i",
            ci(0),
            ci(10),
            vec![
                set("acc", add(v("acc"), ci(1))),
                // Skip ahead: i += 1 inside the body → loop runs 5 times.
                set("i", add(v("i"), ci(1))),
            ],
        ),
        sti(ga("out"), ci(0), v("acc")),
    ]));
    run_both(&m, &[]);
}

#[test]
fn shadowing_free_scopes_share_one_slot() {
    // `x` re-Let inside a loop reassigns the single flat-scope slot.
    let mut m = Module::new("t");
    m.global("out", ElemTy::I64, 1, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        leti("acc", ci(0)),
        for_(
            "i",
            ci(0),
            ci(4),
            vec![
                leti("x", mul(v("i"), ci(10))),
                set("acc", add(v("acc"), v("x"))),
            ],
        ),
        sti(ga("out"), ci(0), v("acc")),
    ]));
    run_both(&m, &[]);
}

#[test]
fn i64_constants_beyond_32_bits() {
    let mut m = Module::new("t");
    m.global("out", ElemTy::I64, 3, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        sti(ga("out"), ci(0), ci(0x1234_5678_9ABC_DEF0)),
        sti(ga("out"), ci(1), ci(-0x1234_5678_9ABC_DEF0)),
        sti(ga("out"), ci(2), ci(i64::MIN)),
    ]));
    run_both(&m, &[]);
}

#[test]
fn memcpy_block_copies() {
    let mut m = Module::new("t");
    m.global(
        "src_buf",
        ElemTy::I64,
        64,
        GlobalInit::I64s((0..64).map(|i| i * 17 - 3).collect()),
    );
    m.global("dst_buf", ElemTy::I64, 64, GlobalInit::Zero);
    m.global("out", ElemTy::I64, 2, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        // Whole-buffer copy.
        memcpy_(ga("dst_buf"), ga("src_buf"), ci(64 * 8)),
        // Overlapping forward copy within dst (memmove semantics: the VM
        // reads everything before writing).
        memcpy_(add(ga("dst_buf"), ci(8)), ga("dst_buf"), ci(16 * 8)),
        // Zero-length copy is a no-op.
        memcpy_(ga("dst_buf"), ga("src_buf"), ci(0)),
        sti(ga("out"), ci(0), ldi(ga("dst_buf"), ci(1))),
        sti(ga("out"), ci(1), ldi(ga("dst_buf"), ci(40))),
    ]));
    run_both(&m, &[]);
}

#[test]
fn break_and_continue() {
    let mut m = Module::new("t");
    m.global("out", ElemTy::I64, 8, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![
        // break in a for: sum 0..i until i == 5.
        leti("acc", ci(0)),
        for_(
            "i",
            ci(0),
            ci(100),
            vec![
                if_(eq(v("i"), ci(5)), vec![brk()]),
                set("acc", add(v("acc"), v("i"))),
            ],
        ),
        sti(ga("out"), ci(0), v("acc")),
        sti(ga("out"), ci(1), v("i")), // loop variable after break (= 5)
        // continue in a for: sum of evens below 10.
        leti("ev", ci(0)),
        for_(
            "j",
            ci(0),
            ci(10),
            vec![
                if_(eq(rem(v("j"), ci(2)), ci(1)), vec![cont()]),
                set("ev", add(v("ev"), v("j"))),
            ],
        ),
        sti(ga("out"), ci(2), v("ev")),
        // break in a while.
        leti("k", ci(0)),
        while_(
            ci(1),
            vec![
                set("k", add(v("k"), ci(1))),
                if_(ge(v("k"), ci(7)), vec![brk()]),
            ],
        ),
        sti(ga("out"), ci(3), v("k")),
        // continue in a while (must still make progress before continuing).
        leti("n", ci(0)),
        leti("odd_sum", ci(0)),
        while_(
            lt(v("n"), ci(10)),
            vec![
                set("n", add(v("n"), ci(1))),
                if_(eq(rem(v("n"), ci(2)), ci(0)), vec![cont()]),
                set("odd_sum", add(v("odd_sum"), v("n"))),
            ],
        ),
        sti(ga("out"), ci(4), v("odd_sum")),
        // nested loops: break only exits the inner one.
        leti("pairs", ci(0)),
        for_(
            "a",
            ci(0),
            ci(4),
            vec![for_(
                "b",
                ci(0),
                ci(4),
                vec![
                    if_(gt(v("b"), v("a")), vec![brk()]),
                    set("pairs", add(v("pairs"), ci(1))),
                ],
            )],
        ),
        sti(ga("out"), ci(5), v("pairs")),
        // continue at the last statement of a for body is a no-op.
        leti("c2", ci(0)),
        for_(
            "q",
            ci(0),
            ci(3),
            vec![set("c2", add(v("c2"), ci(1))), cont()],
        ),
        sti(ga("out"), ci(6), v("c2")),
    ]));
    run_both(&m, &[]);
}

#[test]
fn break_outside_loop_rejected() {
    use tq_kernelc::CompileError;
    let mut m = Module::new("t");
    m.func(Function::new("main").body(vec![brk()]));
    assert!(matches!(
        tq_kernelc::check(&m),
        Err(CompileError::BreakOutsideLoop(_))
    ));
    let mut m2 = Module::new("t");
    m2.func(Function::new("main").body(vec![if_(ci(1), vec![cont()])]));
    assert!(matches!(
        tq_kernelc::check(&m2),
        Err(CompileError::BreakOutsideLoop(_))
    ));
    // But inside a loop body's if, it is fine.
    let mut m3 = Module::new("t");
    m3.func(Function::new("main").body(vec![while_(ci(0), vec![if_(ci(1), vec![brk()])])]));
    assert_eq!(tq_kernelc::check(&m3), Ok(()));
}
