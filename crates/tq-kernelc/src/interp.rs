//! Reference interpreter for kernel modules.
//!
//! Executes the AST directly against the *same* simulated memory layout the
//! compiled code uses, with bit-identical scalar semantics (wrapping `i64`
//! arithmetic, ÷0 → 0, shift counts masked to 63, `f32` narrowing on `F32`
//! stores, truncating saturating `f64`→`i64` casts). The compiler test suite
//! runs every construct both ways — AST-interpreted and VM-executed — and
//! compares results; any divergence is a bug in one of the two.

use crate::ast::*;
use crate::layout::GlobalLayout;
use std::collections::HashMap;
use tq_isa::HostFn;
use tq_vm::{FsMode, HostFs, Memory};

/// A scalar runtime value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// Integer.
    I(i64),
    /// Float.
    F(f64),
}

impl Value {
    /// Unwrap an integer.
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(_) => panic!("expected i64 value (module was checked)"),
        }
    }

    /// Unwrap a float.
    pub fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            Value::I(_) => panic!("expected f64 value (module was checked)"),
        }
    }
}

/// Interpreter failure.
#[derive(Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The step budget ran out (runaway loop guard).
    StepLimit,
    /// A memory access left the simulated address space.
    MemOutOfRange(u64),
    /// Call to a function missing from the module.
    UnknownFunction(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::StepLimit => write!(f, "interpreter step limit exceeded"),
            InterpError::MemOutOfRange(a) => write!(f, "memory access out of range at {a:#x}"),
            InterpError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
        }
    }
}

impl std::error::Error for InterpError {}

enum Flow {
    Normal,
    Return(Option<Value>),
    Exit(i64),
    Break,
    Continue,
}

/// The reference interpreter.
pub struct Interp {
    module: Module,
    layout: GlobalLayout,
    /// Simulated data memory (same addresses as the compiled program).
    pub mem: Memory,
    /// Simulated file system + console (same host-call semantics as the VM).
    pub fs: HostFs,
    steps: u64,
    step_limit: u64,
}

impl Interp {
    /// Build an interpreter for `module`, seeding global initialisers.
    pub fn new(module: &Module) -> Interp {
        let layout = GlobalLayout::of(module);
        let mut mem = Memory::new();
        for g in &module.globals {
            if let Some(bytes) = GlobalLayout::init_bytes(g) {
                let slot = layout.get(&g.name).expect("own global");
                mem.write(slot.addr, &bytes)
                    .expect("globals fit the address space");
            }
        }
        Interp {
            module: module.clone(),
            layout,
            mem,
            fs: HostFs::new(),
            steps: 0,
            step_limit: u64::MAX,
        }
    }

    /// Cap the number of executed statements (guards runaway loops in
    /// differential tests).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Statements executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Global layout (to read back results).
    pub fn layout(&self) -> &GlobalLayout {
        &self.layout
    }

    /// Run `main`; returns the exit code (0 unless `main` returns a value or
    /// the program calls `Exit`).
    pub fn run(&mut self) -> Result<i64, InterpError> {
        match self.call("main", &[])? {
            CallOutcome::Returned(Some(Value::I(v))) => Ok(v),
            CallOutcome::Returned(_) => Ok(0),
            CallOutcome::Exited(code) => Ok(code),
        }
    }

    /// Call a function with scalar arguments.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<CallOutcome, InterpError> {
        let f = self
            .module
            .function(name)
            .ok_or_else(|| InterpError::UnknownFunction(name.to_string()))?
            .clone();
        let mut env: HashMap<String, Value> = HashMap::new();
        assert_eq!(args.len(), f.params.len(), "checked call arity");
        for (p, a) in f.params.iter().zip(args) {
            env.insert(p.name.clone(), *a);
        }
        match self.exec_block(&f.body, &mut env)? {
            Flow::Exit(code) => Ok(CallOutcome::Exited(code)),
            Flow::Return(v) => Ok(CallOutcome::Returned(v)),
            Flow::Normal => Ok(CallOutcome::Returned(None)),
            Flow::Break | Flow::Continue => {
                unreachable!("checker rejects break/continue outside loops")
            }
        }
    }

    fn exec_block(
        &mut self,
        body: &[Stmt],
        env: &mut HashMap<String, Value>,
    ) -> Result<Flow, InterpError> {
        for s in body {
            match self.exec_stmt(s, env)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn tick(&mut self) -> Result<(), InterpError> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(InterpError::StepLimit);
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        s: &Stmt,
        env: &mut HashMap<String, Value>,
    ) -> Result<Flow, InterpError> {
        self.tick()?;
        match s {
            Stmt::Let { var, init, .. } | Stmt::Assign { var, e: init } => {
                let v = self.eval(init, env)?;
                env.insert(var.clone(), v);
            }
            Stmt::Store {
                base,
                elem,
                idx,
                val,
            } => {
                let b = self.eval(base, env)?.as_i() as u64;
                let i = self.eval(idx, env)?.as_i() as u64;
                let addr = b.wrapping_add(i.wrapping_mul(elem.size() as u64));
                let v = self.eval(val, env)?;
                self.store_elem(addr, *elem, v)?;
            }
            Stmt::If { cond, then, els } => {
                let c = self.eval(cond, env)?.as_i();
                let branch = if c != 0 { then } else { els };
                return self.exec_block(branch, env);
            }
            Stmt::While { cond, body } => loop {
                self.tick()?;
                if self.eval(cond, env)?.as_i() == 0 {
                    break;
                }
                match self.exec_block(body, env)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => break,
                    other => return Ok(other),
                }
            },
            Stmt::For { var, lo, hi, body } => {
                let mut i = self.eval(lo, env)?.as_i();
                let bound = self.eval(hi, env)?.as_i();
                while i < bound {
                    self.tick()?;
                    env.insert(var.clone(), Value::I(i));
                    match self.exec_block(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => {
                            // The compiled break leaves the slot at the
                            // current iteration's value.
                            return Ok(Flow::Normal);
                        }
                        other => return Ok(other),
                    }
                    // The compiled loop reloads the variable, so body writes
                    // to it are visible to the increment.
                    i = env[var].as_i().wrapping_add(1);
                }
                env.insert(var.clone(), Value::I(bound.max(i)));
            }
            Stmt::Call { func, args, ret } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                match self.call(func, &vals)? {
                    CallOutcome::Exited(code) => return Ok(Flow::Exit(code)),
                    CallOutcome::Returned(v) => {
                        if let Some(rv) = ret {
                            env.insert(rv.clone(), v.expect("checked: callee returns a value"));
                        }
                    }
                }
            }
            Stmt::Host { func, args, ret } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                match self.host(*func, &vals)? {
                    HostOutcome::Exit(code) => return Ok(Flow::Exit(code)),
                    HostOutcome::Value(v) => {
                        if let Some(rv) = ret {
                            env.insert(rv.clone(), Value::I(v));
                        }
                    }
                }
            }
            Stmt::MemCpy { dst, src, bytes } => {
                let d = self.eval(dst, env)?.as_i() as u64;
                let sa = self.eval(src, env)?.as_i() as u64;
                let n = self.eval(bytes, env)?.as_i() as u64;
                // Mirror the VM: read everything, then write (memmove).
                let mut buf = vec![0u8; n as usize];
                self.mem
                    .read(sa, &mut buf)
                    .map_err(|_| InterpError::MemOutOfRange(sa))?;
                self.mem
                    .write(d, &buf)
                    .map_err(|_| InterpError::MemOutOfRange(d))?;
            }
            Stmt::Prefetch { base, idx } => {
                // Evaluate for effect parity; no architectural change.
                let _ = self.eval(base, env)?;
                let _ = self.eval(idx, env)?;
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(e, env)?),
                    None => None,
                };
                return Ok(Flow::Return(v));
            }
            Stmt::Break => return Ok(Flow::Break),
            Stmt::Continue => return Ok(Flow::Continue),
        }
        Ok(Flow::Normal)
    }

    fn load_elem(&self, addr: u64, elem: ElemTy) -> Result<Value, InterpError> {
        let merr = |_| InterpError::MemOutOfRange(addr);
        Ok(match elem {
            ElemTy::I8 => Value::I(self.mem.read_uint(addr, 1).map_err(merr)? as u8 as i8 as i64),
            ElemTy::U8 => Value::I(self.mem.read_uint(addr, 1).map_err(merr)? as i64),
            ElemTy::I16 => {
                Value::I(self.mem.read_uint(addr, 2).map_err(merr)? as u16 as i16 as i64)
            }
            ElemTy::U16 => Value::I(self.mem.read_uint(addr, 2).map_err(merr)? as i64),
            ElemTy::I32 => {
                Value::I(self.mem.read_uint(addr, 4).map_err(merr)? as u32 as i32 as i64)
            }
            ElemTy::U32 => Value::I(self.mem.read_uint(addr, 4).map_err(merr)? as i64),
            ElemTy::I64 => Value::I(self.mem.read_uint(addr, 8).map_err(merr)? as i64),
            ElemTy::F32 => Value::F(self.mem.read_f32(addr).map_err(merr)?),
            ElemTy::F64 => Value::F(self.mem.read_f64(addr).map_err(merr)?),
        })
    }

    fn store_elem(&mut self, addr: u64, elem: ElemTy, v: Value) -> Result<(), InterpError> {
        let merr = |_| InterpError::MemOutOfRange(addr);
        match elem {
            ElemTy::I8 | ElemTy::U8 => self
                .mem
                .write_uint(addr, 1, v.as_i() as u64)
                .map_err(merr)?,
            ElemTy::I16 | ElemTy::U16 => self
                .mem
                .write_uint(addr, 2, v.as_i() as u64)
                .map_err(merr)?,
            ElemTy::I32 | ElemTy::U32 => self
                .mem
                .write_uint(addr, 4, v.as_i() as u64)
                .map_err(merr)?,
            ElemTy::I64 => self
                .mem
                .write_uint(addr, 8, v.as_i() as u64)
                .map_err(merr)?,
            ElemTy::F32 => self.mem.write_f32(addr, v.as_f()).map_err(merr)?,
            ElemTy::F64 => self.mem.write_f64(addr, v.as_f()).map_err(merr)?,
        }
        Ok(())
    }

    fn eval(&mut self, e: &Expr, env: &HashMap<String, Value>) -> Result<Value, InterpError> {
        Ok(match e {
            Expr::ConstI(v) => Value::I(*v),
            Expr::ConstF(v) => {
                // Parity with codegen: constants exactly representable in
                // f32 go through an f32 immediate; others are loaded at full
                // precision. Both round-trip to the same f64, so no
                // adjustment is needed here.
                Value::F(*v)
            }
            Expr::Var(n) => *env.get(n).expect("checked variable"),
            Expr::GlobalAddr(n) => {
                Value::I(self.layout.get(n).expect("checked global").addr as i64)
            }
            Expr::Load { base, elem, idx } => {
                let b = self.eval(base, env)?.as_i() as u64;
                let i = self.eval(idx, env)?.as_i() as u64;
                let addr = b.wrapping_add(i.wrapping_mul(elem.size() as u64));
                self.load_elem(addr, *elem)?
            }
            Expr::Bin { op, lhs, rhs } => {
                let a = self.eval(lhs, env)?;
                let b = self.eval(rhs, env)?;
                eval_bin(*op, a, b)
            }
            Expr::Un { op, e } => {
                let v = self.eval(e, env)?;
                match op {
                    UnOp::Neg => match v {
                        Value::I(x) => Value::I(x.wrapping_neg()),
                        Value::F(x) => Value::F(-x),
                    },
                    UnOp::Abs => Value::F(v.as_f().abs()),
                    UnOp::Sqrt => Value::F(v.as_f().sqrt()),
                    UnOp::Sin => Value::F(v.as_f().sin()),
                    UnOp::Cos => Value::F(v.as_f().cos()),
                    UnOp::I2F => Value::F(v.as_i() as f64),
                    UnOp::F2I => Value::I(v.as_f() as i64),
                }
            }
        })
    }

    fn host(&mut self, func: HostFn, args: &[Value]) -> Result<HostOutcome, InterpError> {
        // Mirror of Vm::exec_host over the interpreter's own memory/fs.
        let int_arg = |i: usize| -> i64 {
            args.iter()
                .filter(|v| matches!(v, Value::I(_)))
                .nth(i)
                .map(|v| v.as_i())
                .unwrap_or(0)
        };
        let float_arg = |i: usize| -> f64 {
            args.iter()
                .filter(|v| matches!(v, Value::F(_)))
                .nth(i)
                .map(|v| v.as_f())
                .unwrap_or(0.0)
        };
        Ok(match func {
            HostFn::Exit => HostOutcome::Exit(int_arg(0)),
            HostFn::PrintI64 => {
                let v = int_arg(0);
                self.fs.console_push(&format!("{v}\n"));
                HostOutcome::Value(0)
            }
            HostFn::PrintF64 => {
                let v = float_arg(0);
                self.fs.console_push(&format!("{v:.6}\n"));
                HostOutcome::Value(0)
            }
            HostFn::PrintChar => {
                let c = (int_arg(0) as u64 & 0xFF) as u8 as char;
                self.fs.console_push(&c.to_string());
                HostOutcome::Value(0)
            }
            HostFn::FsOpen => {
                let ptr = int_arg(0) as u64;
                let len = (int_arg(1) as usize).min(4096);
                let mode = if int_arg(2) == 0 {
                    FsMode::Read
                } else {
                    FsMode::Write
                };
                let mut buf = vec![0u8; len];
                self.mem
                    .read(ptr, &mut buf)
                    .map_err(|_| InterpError::MemOutOfRange(ptr))?;
                let name = String::from_utf8_lossy(&buf).into_owned();
                HostOutcome::Value(self.fs.open(&name, mode).unwrap_or(-1))
            }
            HostFn::FsClose => HostOutcome::Value(if self.fs.close(int_arg(0)) { 0 } else { -1 }),
            HostFn::FsRead => {
                let fd = int_arg(0);
                let ptr = int_arg(1) as u64;
                let len = int_arg(2) as usize;
                let mut buf = vec![0u8; len];
                let n = self.fs.read(fd, &mut buf);
                if n > 0 {
                    self.mem
                        .write(ptr, &buf[..n as usize])
                        .map_err(|_| InterpError::MemOutOfRange(ptr))?;
                }
                HostOutcome::Value(n)
            }
            HostFn::FsWrite => {
                let fd = int_arg(0);
                let ptr = int_arg(1) as u64;
                let len = int_arg(2) as usize;
                let mut buf = vec![0u8; len];
                self.mem
                    .read(ptr, &mut buf)
                    .map_err(|_| InterpError::MemOutOfRange(ptr))?;
                HostOutcome::Value(self.fs.write(fd, &buf))
            }
            HostFn::FsSize => HostOutcome::Value(self.fs.size(int_arg(0))),
            HostFn::Icount => HostOutcome::Value(self.steps as i64),
        })
    }
}

/// Result of [`Interp::call`].
#[derive(Debug, PartialEq)]
pub enum CallOutcome {
    /// The function returned (with an optional value).
    Returned(Option<Value>),
    /// The program exited during the call.
    Exited(i64),
}

enum HostOutcome {
    Value(i64),
    Exit(i64),
}

pub(crate) fn eval_bin(op: BinOp, a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::I(x), Value::I(y)) => {
            let r = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                BinOp::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => ((x as u64) << (y as u64 & 63)) as i64,
                BinOp::Shr => ((x as u64) >> (y as u64 & 63)) as i64,
                BinOp::Sra => x >> (y as u64 & 63),
                BinOp::Lt => (x < y) as i64,
                BinOp::Le => (x <= y) as i64,
                BinOp::Gt => (x > y) as i64,
                BinOp::Ge => (x >= y) as i64,
                BinOp::Eq => (x == y) as i64,
                BinOp::Ne => (x != y) as i64,
                BinOp::Min | BinOp::Max => unreachable!("checked float-only op"),
            };
            Value::I(r)
        }
        (Value::F(x), Value::F(y)) => match op {
            BinOp::Add => Value::F(x + y),
            BinOp::Sub => Value::F(x - y),
            BinOp::Mul => Value::F(x * y),
            BinOp::Div => Value::F(x / y),
            BinOp::Min => Value::F(x.min(y)),
            BinOp::Max => Value::F(x.max(y)),
            BinOp::Lt => Value::I((x < y) as i64),
            BinOp::Le => Value::I((x <= y) as i64),
            BinOp::Gt => Value::I((x > y) as i64),
            BinOp::Ge => Value::I((x >= y) as i64),
            BinOp::Eq => Value::I((x == y) as i64),
            BinOp::Ne => Value::I((x != y) as i64),
            _ => unreachable!("checked int-only op"),
        },
        _ => unreachable!("checked operand types"),
    }
}
