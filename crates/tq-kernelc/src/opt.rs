//! Constant folding and branch simplification — an optional `-O1`-style
//! pass over the AST.
//!
//! The default pipeline compiles at `-O0` on purpose: the paper's
//! include/exclude-stack experiments depend on unoptimised code's local
//! traffic (see `codegen`). This pass exists for the *ablation*: folding
//! shrinks instruction counts and shifts the stack/global traffic balance,
//! demonstrating on our own substrate why the paper's bytes-per-instruction
//! numbers are compiler-sensitive while the access-pattern *shapes*
//! (UnMA footprints, phases, producer→consumer structure) are not.
//!
//! Folding reuses the interpreter's scalar semantics verbatim
//! ([`crate::interp`]'s `eval_bin`), so a folded program cannot diverge
//! from its unfolded meaning — property-tested in
//! `tests/prop_differential.rs`.

use crate::ast::*;
use crate::interp::{eval_bin, Value};

/// Fold a whole module. The input is unchanged; the result is
/// semantically identical (same memory effects and results, typically
/// fewer instructions once compiled).
pub fn fold_module(module: &Module) -> Module {
    let mut out = module.clone();
    for f in &mut out.functions {
        f.body = fold_block(std::mem::take(&mut f.body));
    }
    out
}

fn as_const(e: &Expr) -> Option<Value> {
    match e {
        Expr::ConstI(v) => Some(Value::I(*v)),
        Expr::ConstF(v) => Some(Value::F(*v)),
        _ => None,
    }
}

fn from_value(v: Value) -> Expr {
    match v {
        Value::I(x) => Expr::ConstI(x),
        Value::F(x) => Expr::ConstF(x),
    }
}

/// Fold one expression bottom-up.
pub fn fold_expr(e: Expr) -> Expr {
    match e {
        Expr::Bin { op, lhs, rhs } => {
            let l = fold_expr(*lhs);
            let r = fold_expr(*rhs);
            if let (Some(a), Some(b)) = (as_const(&l), as_const(&r)) {
                // NaN-producing float folds are still exact: the constant
                // carries the same bits the runtime op would produce.
                return from_value(eval_bin(op, a, b));
            }
            // Integer identities that drop only the constant operand
            // (never a side-effect-bearing subtree). Float identities are
            // deliberately omitted: x + 0.0 is NOT identity for -0.0.
            match (op, &l, &r) {
                (BinOp::Add, _, Expr::ConstI(0)) => return l,
                (BinOp::Add, Expr::ConstI(0), _) => return r,
                (BinOp::Sub, _, Expr::ConstI(0)) => return l,
                (BinOp::Mul, _, Expr::ConstI(1)) => return l,
                (BinOp::Mul, Expr::ConstI(1), _) => return r,
                (BinOp::Or, _, Expr::ConstI(0)) => return l,
                (BinOp::Or, Expr::ConstI(0), _) => return r,
                (BinOp::Xor, _, Expr::ConstI(0)) => return l,
                (BinOp::Xor, Expr::ConstI(0), _) => return r,
                (BinOp::Shl | BinOp::Shr | BinOp::Sra, _, Expr::ConstI(0)) => return l,
                _ => {}
            }
            Expr::Bin {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }
        }
        Expr::Un { op, e } => {
            let inner = fold_expr(*e);
            if let Some(v) = as_const(&inner) {
                let folded = match (op, v) {
                    (UnOp::Neg, Value::I(x)) => Some(Value::I(x.wrapping_neg())),
                    (UnOp::Neg, Value::F(x)) => Some(Value::F(-x)),
                    (UnOp::Abs, Value::F(x)) => Some(Value::F(x.abs())),
                    (UnOp::Sqrt, Value::F(x)) => Some(Value::F(x.sqrt())),
                    (UnOp::Sin, Value::F(x)) => Some(Value::F(x.sin())),
                    (UnOp::Cos, Value::F(x)) => Some(Value::F(x.cos())),
                    (UnOp::I2F, Value::I(x)) => Some(Value::F(x as f64)),
                    (UnOp::F2I, Value::F(x)) => Some(Value::I(x as i64)),
                    _ => None,
                };
                if let Some(v) = folded {
                    return from_value(v);
                }
            }
            Expr::Un {
                op,
                e: Box::new(inner),
            }
        }
        Expr::Load { base, elem, idx } => Expr::Load {
            base: Box::new(fold_expr(*base)),
            elem,
            idx: Box::new(fold_expr(*idx)),
        },
        leaf @ (Expr::ConstI(_) | Expr::ConstF(_) | Expr::Var(_) | Expr::GlobalAddr(_)) => leaf,
    }
}

fn fold_block(body: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(body.len());
    for s in body {
        match fold_stmt(s) {
            Folded::Keep(s) => out.push(s),
            Folded::Splice(stmts) => out.extend(stmts),
            Folded::Drop => {}
        }
    }
    out
}

enum Folded {
    Keep(Stmt),
    Splice(Vec<Stmt>),
    Drop,
}

fn fold_stmt(s: Stmt) -> Folded {
    Folded::Keep(match s {
        Stmt::Let { var, ty, init } => Stmt::Let {
            var,
            ty,
            init: fold_expr(init),
        },
        Stmt::Assign { var, e } => Stmt::Assign {
            var,
            e: fold_expr(e),
        },
        Stmt::Store {
            base,
            elem,
            idx,
            val,
        } => Stmt::Store {
            base: fold_expr(base),
            elem,
            idx: fold_expr(idx),
            val: fold_expr(val),
        },
        Stmt::If { cond, then, els } => {
            let cond = fold_expr(cond);
            if let Expr::ConstI(c) = cond {
                // Dead-branch elimination.
                let taken = if c != 0 { then } else { els };
                return Folded::Splice(fold_block(taken));
            }
            Stmt::If {
                cond,
                then: fold_block(then),
                els: fold_block(els),
            }
        }
        Stmt::While { cond, body } => {
            let cond = fold_expr(cond);
            if matches!(cond, Expr::ConstI(0)) {
                return Folded::Drop;
            }
            Stmt::While {
                cond,
                body: fold_block(body),
            }
        }
        Stmt::For { var, lo, hi, body } => {
            let lo = fold_expr(lo);
            let hi = fold_expr(hi);
            if let (Expr::ConstI(a), Expr::ConstI(b)) = (&lo, &hi) {
                if a >= b {
                    // Zero-trip loop still defines its variable (the
                    // compiled form stores `lo` before the bound check).
                    return Folded::Keep(Stmt::Let {
                        var,
                        ty: Ty::I64,
                        init: lo,
                    });
                }
            }
            Stmt::For {
                var,
                lo,
                hi,
                body: fold_block(body),
            }
        }
        Stmt::Call { func, args, ret } => Stmt::Call {
            func,
            args: args.into_iter().map(fold_expr).collect(),
            ret,
        },
        Stmt::Host { func, args, ret } => Stmt::Host {
            func,
            args: args.into_iter().map(fold_expr).collect(),
            ret,
        },
        Stmt::MemCpy { dst, src, bytes } => Stmt::MemCpy {
            dst: fold_expr(dst),
            src: fold_expr(src),
            bytes: fold_expr(bytes),
        },
        Stmt::Prefetch { base, idx } => Stmt::Prefetch {
            base: fold_expr(base),
            idx: fold_expr(idx),
        },
        Stmt::Return(e) => Stmt::Return(e.map(fold_expr)),
        Stmt::Break => Stmt::Break,
        Stmt::Continue => Stmt::Continue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn folds_constant_arithmetic() {
        assert_eq!(fold_expr(add(ci(2), mul(ci(3), ci(4)))), ci(14));
        assert_eq!(
            fold_expr(div(ci(7), ci(0))),
            ci(0),
            "÷0 folds to the runtime value"
        );
        assert_eq!(fold_expr(add(cf(1.5), cf(2.5))), cf(4.0));
        assert_eq!(fold_expr(f2i(cf(3.99))), ci(3));
        assert_eq!(fold_expr(neg(ci(i64::MIN))), ci(i64::MIN), "wrapping neg");
    }

    #[test]
    fn integer_identities() {
        assert_eq!(fold_expr(add(v("x"), ci(0))), v("x"));
        assert_eq!(fold_expr(mul(ci(1), v("x"))), v("x"));
        assert_eq!(fold_expr(bxor(v("x"), ci(0))), v("x"));
        assert_eq!(fold_expr(shl(v("x"), ci(0))), v("x"));
        // NOT folded: float pseudo-identities and value-dropping forms.
        assert_ne!(fold_expr(add(v("f"), cf(0.0))), v("f"));
        assert_ne!(fold_expr(mul(v("x"), ci(0))), ci(0));
    }

    #[test]
    fn dead_branches_eliminated() {
        let m = {
            let mut m = Module::new("t");
            m.func(Function::new("main").body(vec![
                if_else(ci(1), vec![leti("a", ci(1))], vec![leti("a", ci(2))]),
                if_else(
                    eq(ci(3), ci(4)),
                    vec![leti("b", ci(1))],
                    vec![leti("b", ci(2))],
                ),
                while_(ci(0), vec![leti("dead", ci(9))]),
                for_("i", ci(5), ci(5), vec![leti("dead2", ci(9))]),
            ]));
            m
        };
        let folded = fold_module(&m);
        let body = &folded.function("main").unwrap().body;
        assert_eq!(body.len(), 3, "{body:?}"); // a=1, b=2, i=5 (loop var kept)
        assert!(matches!(&body[0], Stmt::Let { var, init: Expr::ConstI(1), .. } if var == "a"));
        assert!(matches!(&body[1], Stmt::Let { var, init: Expr::ConstI(2), .. } if var == "b"));
        assert!(matches!(&body[2], Stmt::Let { var, init: Expr::ConstI(5), .. } if var == "i"));
    }

    #[test]
    fn folding_preserves_checkability() {
        // The wfs module must still check and compile after folding.
        let m = tq_wfs_placeholder();
        let folded = fold_module(&m);
        crate::check(&folded).expect("folded module still checks");
    }

    /// A small stand-in (tq-wfs depends on this crate, not vice versa).
    fn tq_wfs_placeholder() -> Module {
        let mut m = Module::new("t");
        m.global("buf", ElemTy::F64, 8, GlobalInit::Zero);
        m.func(Function::new("main").body(vec![
            leti("n", add(ci(4), ci(4))),
            for_(
                "i",
                ci(0),
                v("n"),
                vec![stf(
                    ga("buf"),
                    v("i"),
                    mul(i2f(v("i")), add(cf(1.0), cf(0.5))),
                )],
            ),
        ]));
        m
    }
}
