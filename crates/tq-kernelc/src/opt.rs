//! Constant folding and branch simplification — an optional `-O1`-style
//! pass over the AST.
//!
//! The default pipeline compiles at `-O0` on purpose: the paper's
//! include/exclude-stack experiments depend on unoptimised code's local
//! traffic (see `codegen`). This pass exists for the *ablation*: folding
//! shrinks instruction counts and shifts the stack/global traffic balance,
//! demonstrating on our own substrate why the paper's bytes-per-instruction
//! numbers are compiler-sensitive while the access-pattern *shapes*
//! (UnMA footprints, phases, producer→consumer structure) are not.
//!
//! Folding reuses the interpreter's scalar semantics verbatim
//! ([`crate::interp`]'s `eval_bin`), so a folded program cannot diverge
//! from its unfolded meaning — property-tested in
//! `tests/prop_differential.rs`.

use crate::ast::*;
use crate::interp::{eval_bin, Value};

/// What one [`fold_module`] pass actually did. The opt-level ablation
/// reads these to tell "the pass found nothing" apart from "the pass
/// never fired" — on the wfs kernels every dimension is a runtime load
/// from the `cfg` global, so a near-zero count is the *correct* result
/// there, and the ablation must be able to assert that at the IR level
/// instead of inferring it from an unchanged profile.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Operator applications (binary or unary) evaluated to a constant.
    pub consts_folded: u64,
    /// Integer identity rewrites applied (`x+0`, `x*1`, `x^0`, `x<<0`, …).
    pub identities_applied: u64,
    /// `if` statements with a constant condition replaced by one arm.
    pub branches_eliminated: u64,
    /// Loops removed: `while 0` bodies and zero-trip `for` ranges.
    pub loops_eliminated: u64,
}

impl FoldStats {
    /// Total rewrites of any kind; zero means the pass provably changed
    /// nothing.
    pub fn total(&self) -> u64 {
        self.consts_folded
            + self.identities_applied
            + self.branches_eliminated
            + self.loops_eliminated
    }
}

/// Fold a whole module. The input is unchanged; the result is
/// semantically identical (same memory effects and results, typically
/// fewer instructions once compiled).
pub fn fold_module(module: &Module) -> Module {
    fold_module_with_stats(module).0
}

/// [`fold_module`], also reporting what the pass did (for the `-O0` vs
/// `-O1` ablation and its IR-level assertions).
pub fn fold_module_with_stats(module: &Module) -> (Module, FoldStats) {
    let mut stats = FoldStats::default();
    let mut out = module.clone();
    for f in &mut out.functions {
        f.body = fold_block(std::mem::take(&mut f.body), &mut stats);
    }
    (out, stats)
}

fn as_const(e: &Expr) -> Option<Value> {
    match e {
        Expr::ConstI(v) => Some(Value::I(*v)),
        Expr::ConstF(v) => Some(Value::F(*v)),
        _ => None,
    }
}

fn from_value(v: Value) -> Expr {
    match v {
        Value::I(x) => Expr::ConstI(x),
        Value::F(x) => Expr::ConstF(x),
    }
}

/// Fold one expression bottom-up.
pub fn fold_expr(e: Expr) -> Expr {
    fold_expr_st(e, &mut FoldStats::default())
}

fn fold_expr_st(e: Expr, st: &mut FoldStats) -> Expr {
    match e {
        Expr::Bin { op, lhs, rhs } => {
            let l = fold_expr_st(*lhs, st);
            let r = fold_expr_st(*rhs, st);
            if let (Some(a), Some(b)) = (as_const(&l), as_const(&r)) {
                // NaN-producing float folds are still exact: the constant
                // carries the same bits the runtime op would produce.
                st.consts_folded += 1;
                return from_value(eval_bin(op, a, b));
            }
            // Integer identities that drop only the constant operand
            // (never a side-effect-bearing subtree). Float identities are
            // deliberately omitted: x + 0.0 is NOT identity for -0.0.
            match (op, &l, &r) {
                (BinOp::Add, _, Expr::ConstI(0))
                | (BinOp::Sub, _, Expr::ConstI(0))
                | (BinOp::Mul, _, Expr::ConstI(1))
                | (BinOp::Or, _, Expr::ConstI(0))
                | (BinOp::Xor, _, Expr::ConstI(0))
                | (BinOp::Shl | BinOp::Shr | BinOp::Sra, _, Expr::ConstI(0)) => {
                    st.identities_applied += 1;
                    return l;
                }
                (BinOp::Add, Expr::ConstI(0), _)
                | (BinOp::Mul, Expr::ConstI(1), _)
                | (BinOp::Or, Expr::ConstI(0), _)
                | (BinOp::Xor, Expr::ConstI(0), _) => {
                    st.identities_applied += 1;
                    return r;
                }
                _ => {}
            }
            Expr::Bin {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }
        }
        Expr::Un { op, e } => {
            let inner = fold_expr_st(*e, st);
            if let Some(v) = as_const(&inner) {
                let folded = match (op, v) {
                    (UnOp::Neg, Value::I(x)) => Some(Value::I(x.wrapping_neg())),
                    (UnOp::Neg, Value::F(x)) => Some(Value::F(-x)),
                    (UnOp::Abs, Value::F(x)) => Some(Value::F(x.abs())),
                    (UnOp::Sqrt, Value::F(x)) => Some(Value::F(x.sqrt())),
                    (UnOp::Sin, Value::F(x)) => Some(Value::F(x.sin())),
                    (UnOp::Cos, Value::F(x)) => Some(Value::F(x.cos())),
                    (UnOp::I2F, Value::I(x)) => Some(Value::F(x as f64)),
                    (UnOp::F2I, Value::F(x)) => Some(Value::I(x as i64)),
                    _ => None,
                };
                if let Some(v) = folded {
                    st.consts_folded += 1;
                    return from_value(v);
                }
            }
            Expr::Un {
                op,
                e: Box::new(inner),
            }
        }
        Expr::Load { base, elem, idx } => Expr::Load {
            base: Box::new(fold_expr_st(*base, st)),
            elem,
            idx: Box::new(fold_expr_st(*idx, st)),
        },
        leaf @ (Expr::ConstI(_) | Expr::ConstF(_) | Expr::Var(_) | Expr::GlobalAddr(_)) => leaf,
    }
}

fn fold_block(body: Vec<Stmt>, st: &mut FoldStats) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(body.len());
    for s in body {
        match fold_stmt(s, st) {
            Folded::Keep(s) => out.push(s),
            Folded::Splice(stmts) => out.extend(stmts),
            Folded::Drop => {}
        }
    }
    out
}

enum Folded {
    Keep(Stmt),
    Splice(Vec<Stmt>),
    Drop,
}

fn fold_stmt(s: Stmt, st: &mut FoldStats) -> Folded {
    Folded::Keep(match s {
        Stmt::Let { var, ty, init } => Stmt::Let {
            var,
            ty,
            init: fold_expr_st(init, st),
        },
        Stmt::Assign { var, e } => Stmt::Assign {
            var,
            e: fold_expr_st(e, st),
        },
        Stmt::Store {
            base,
            elem,
            idx,
            val,
        } => Stmt::Store {
            base: fold_expr_st(base, st),
            elem,
            idx: fold_expr_st(idx, st),
            val: fold_expr_st(val, st),
        },
        Stmt::If { cond, then, els } => {
            let cond = fold_expr_st(cond, st);
            if let Expr::ConstI(c) = cond {
                // Dead-branch elimination.
                st.branches_eliminated += 1;
                let taken = if c != 0 { then } else { els };
                return Folded::Splice(fold_block(taken, st));
            }
            Stmt::If {
                cond,
                then: fold_block(then, st),
                els: fold_block(els, st),
            }
        }
        Stmt::While { cond, body } => {
            let cond = fold_expr_st(cond, st);
            if matches!(cond, Expr::ConstI(0)) {
                st.loops_eliminated += 1;
                return Folded::Drop;
            }
            Stmt::While {
                cond,
                body: fold_block(body, st),
            }
        }
        Stmt::For { var, lo, hi, body } => {
            let lo = fold_expr_st(lo, st);
            let hi = fold_expr_st(hi, st);
            if let (Expr::ConstI(a), Expr::ConstI(b)) = (&lo, &hi) {
                if a >= b {
                    // Zero-trip loop still defines its variable (the
                    // compiled form stores `lo` before the bound check).
                    st.loops_eliminated += 1;
                    return Folded::Keep(Stmt::Let {
                        var,
                        ty: Ty::I64,
                        init: lo,
                    });
                }
            }
            Stmt::For {
                var,
                lo,
                hi,
                body: fold_block(body, st),
            }
        }
        Stmt::Call { func, args, ret } => Stmt::Call {
            func,
            args: args.into_iter().map(|a| fold_expr_st(a, st)).collect(),
            ret,
        },
        Stmt::Host { func, args, ret } => Stmt::Host {
            func,
            args: args.into_iter().map(|a| fold_expr_st(a, st)).collect(),
            ret,
        },
        Stmt::MemCpy { dst, src, bytes } => Stmt::MemCpy {
            dst: fold_expr_st(dst, st),
            src: fold_expr_st(src, st),
            bytes: fold_expr_st(bytes, st),
        },
        Stmt::Prefetch { base, idx } => Stmt::Prefetch {
            base: fold_expr_st(base, st),
            idx: fold_expr_st(idx, st),
        },
        Stmt::Return(e) => Stmt::Return(e.map(|e| fold_expr_st(e, st))),
        Stmt::Break => Stmt::Break,
        Stmt::Continue => Stmt::Continue,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn folds_constant_arithmetic() {
        assert_eq!(fold_expr(add(ci(2), mul(ci(3), ci(4)))), ci(14));
        assert_eq!(
            fold_expr(div(ci(7), ci(0))),
            ci(0),
            "÷0 folds to the runtime value"
        );
        assert_eq!(fold_expr(add(cf(1.5), cf(2.5))), cf(4.0));
        assert_eq!(fold_expr(f2i(cf(3.99))), ci(3));
        assert_eq!(fold_expr(neg(ci(i64::MIN))), ci(i64::MIN), "wrapping neg");
    }

    #[test]
    fn integer_identities() {
        assert_eq!(fold_expr(add(v("x"), ci(0))), v("x"));
        assert_eq!(fold_expr(mul(ci(1), v("x"))), v("x"));
        assert_eq!(fold_expr(bxor(v("x"), ci(0))), v("x"));
        assert_eq!(fold_expr(shl(v("x"), ci(0))), v("x"));
        // NOT folded: float pseudo-identities and value-dropping forms.
        assert_ne!(fold_expr(add(v("f"), cf(0.0))), v("f"));
        assert_ne!(fold_expr(mul(v("x"), ci(0))), ci(0));
    }

    #[test]
    fn dead_branches_eliminated() {
        let m = {
            let mut m = Module::new("t");
            m.func(Function::new("main").body(vec![
                if_else(ci(1), vec![leti("a", ci(1))], vec![leti("a", ci(2))]),
                if_else(
                    eq(ci(3), ci(4)),
                    vec![leti("b", ci(1))],
                    vec![leti("b", ci(2))],
                ),
                while_(ci(0), vec![leti("dead", ci(9))]),
                for_("i", ci(5), ci(5), vec![leti("dead2", ci(9))]),
            ]));
            m
        };
        let folded = fold_module(&m);
        let body = &folded.function("main").unwrap().body;
        assert_eq!(body.len(), 3, "{body:?}"); // a=1, b=2, i=5 (loop var kept)
        assert!(matches!(&body[0], Stmt::Let { var, init: Expr::ConstI(1), .. } if var == "a"));
        assert!(matches!(&body[1], Stmt::Let { var, init: Expr::ConstI(2), .. } if var == "b"));
        assert!(matches!(&body[2], Stmt::Let { var, init: Expr::ConstI(5), .. } if var == "i"));
    }

    #[test]
    fn folding_preserves_checkability() {
        // The wfs module must still check and compile after folding.
        let m = tq_wfs_placeholder();
        let folded = fold_module(&m);
        crate::check(&folded).expect("folded module still checks");
    }

    #[test]
    fn stats_count_each_rewrite_kind() {
        let m = {
            let mut m = Module::new("t");
            m.func(Function::new("main").body(vec![
                leti("a", add(ci(2), ci(3))),                        // consts_folded
                leti("b", add(v("a"), ci(0))),                       // identities_applied
                if_else(ci(1), vec![leti("c", ci(1))], vec![]),      // branch
                while_(ci(0), vec![leti("dead", ci(9))]),            // loop dropped
                for_("i", ci(5), ci(5), vec![leti("dead2", ci(9))]), // zero-trip
            ]));
            m
        };
        let (folded, stats) = fold_module_with_stats(&m);
        assert_eq!(stats.consts_folded, 1, "{stats:?}");
        assert_eq!(stats.identities_applied, 1, "{stats:?}");
        assert_eq!(stats.branches_eliminated, 1, "{stats:?}");
        assert_eq!(stats.loops_eliminated, 2, "{stats:?}");
        assert_eq!(stats.total(), 5);
        crate::check(&folded).expect("still checks");

        // An already-minimal module reports exactly zero rewrites — the
        // signal the opt-level ablation relies on to distinguish
        // "nothing to fold" from "pass never ran".
        let (_, none) = fold_module_with_stats(&fold_module(&m));
        assert_eq!(none, FoldStats::default(), "second pass finds nothing");
    }

    /// A small stand-in (tq-wfs depends on this crate, not vice versa).
    fn tq_wfs_placeholder() -> Module {
        let mut m = Module::new("t");
        m.global("buf", ElemTy::F64, 8, GlobalInit::Zero);
        m.func(Function::new("main").body(vec![
            leti("n", add(ci(4), ci(4))),
            for_(
                "i",
                ci(0),
                v("n"),
                vec![stf(
                    ga("buf"),
                    v("i"),
                    mul(i2f(v("i")), add(cf(1.0), cf(0.5))),
                )],
            ),
        ]));
        m
    }
}
