//! Global-array address assignment, shared by the code generator and the
//! reference interpreter so that compiled code and reference execution read
//! and write the *same* simulated addresses.

use crate::ast::{ElemTy, GlobalDef, GlobalInit, Module};
use std::collections::HashMap;
use tq_vm::layout::GLOBALS_BASE;

/// One laid-out global.
#[derive(Clone, Copy, Debug)]
pub struct GlobalSlot {
    /// Absolute base address.
    pub addr: u64,
    /// Element type.
    pub elem: ElemTy,
    /// Element count.
    pub len: u64,
}

impl GlobalSlot {
    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.elem.size() as u64 * self.len
    }
}

/// Addresses of every global in a module.
#[derive(Clone, Debug, Default)]
pub struct GlobalLayout {
    map: HashMap<String, GlobalSlot>,
    end: u64,
}

impl GlobalLayout {
    /// Lay out the globals of `module` starting at
    /// [`tq_vm::layout::GLOBALS_BASE`], each 8-byte aligned, in declaration
    /// order.
    pub fn of(module: &Module) -> GlobalLayout {
        let mut map = HashMap::new();
        let mut addr = GLOBALS_BASE;
        for g in &module.globals {
            let slot = GlobalSlot {
                addr,
                elem: g.elem,
                len: g.len,
            };
            map.insert(g.name.clone(), slot);
            addr += (slot.size() + 7) & !7;
        }
        GlobalLayout { map, end: addr }
    }

    /// Address and shape of a global.
    pub fn get(&self, name: &str) -> Option<GlobalSlot> {
        self.map.get(name).copied()
    }

    /// One past the last allocated byte (where the code generator places its
    /// float constant pool).
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Initial bytes for a global (used both for image data segments and for
    /// seeding the interpreter memory). `None` for all-zero initialisers —
    /// fresh memory is already zero.
    pub fn init_bytes(def: &GlobalDef) -> Option<Vec<u8>> {
        match &def.init {
            GlobalInit::Zero => None,
            GlobalInit::Bytes(b) => Some(b.clone()),
            GlobalInit::F64s(vals) => {
                let mut out = Vec::with_capacity(vals.len() * 8);
                for v in vals {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Some(out)
            }
            GlobalInit::I64s(vals) => {
                let mut out = Vec::with_capacity(vals.len() * 8);
                for v in vals {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Some(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Function, Module};

    #[test]
    fn globals_are_packed_and_aligned() {
        let mut m = Module::new("t");
        m.global("a", ElemTy::I16, 3, GlobalInit::Zero); // 6 bytes → pads to 8
        m.global("b", ElemTy::F64, 2, GlobalInit::Zero); // 16 bytes
        m.global("c", ElemTy::U8, 1, GlobalInit::Zero); // 1 byte → pads to 8
        m.func(Function::new("main"));
        let l = GlobalLayout::of(&m);
        let a = l.get("a").unwrap();
        let b = l.get("b").unwrap();
        let c = l.get("c").unwrap();
        assert_eq!(a.addr, GLOBALS_BASE);
        assert_eq!(b.addr, GLOBALS_BASE + 8);
        assert_eq!(c.addr, GLOBALS_BASE + 24);
        assert_eq!(l.end(), GLOBALS_BASE + 32);
        assert!(l.get("missing").is_none());
    }

    #[test]
    fn init_bytes_encodings() {
        let g = GlobalDef {
            name: "g".into(),
            elem: ElemTy::F64,
            len: 2,
            init: GlobalInit::F64s(vec![1.0, -2.0]),
        };
        let b = GlobalLayout::init_bytes(&g).unwrap();
        assert_eq!(b.len(), 16);
        assert_eq!(f64::from_le_bytes(b[0..8].try_into().unwrap()), 1.0);
        assert_eq!(f64::from_le_bytes(b[8..16].try_into().unwrap()), -2.0);

        let z = GlobalDef {
            name: "z".into(),
            elem: ElemTy::I64,
            len: 4,
            init: GlobalInit::Zero,
        };
        assert!(GlobalLayout::init_bytes(&z).is_none());
    }
}
