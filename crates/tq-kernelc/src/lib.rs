//! # tq-kernelc — the kernel compiler
//!
//! The paper's case study profiles the *hArtes wfs* C application. The
//! reproduction rebuilds that application in a small imperative kernel
//! language and compiles it onto the [`tq_vm`] virtual machine with a
//! deliberately `-O0`-like code generator (stack-resident locals, staged
//! call arguments), so that compiled kernels exhibit the stack-versus-global
//! memory traffic the paper's experiments measure.
//!
//! * [`ast`] — the typed AST ([`Module`], [`Function`], [`Stmt`], [`Expr`]);
//! * [`dsl`] — terse constructors used to write kernels in Rust;
//! * [`check()`] — static validation shared by both back ends;
//! * [`interp`] — a reference interpreter with bit-identical scalar
//!   semantics, used for differential testing of the compiler;
//! * [`codegen`] — lowering to [`tq_isa`] images ([`compile`]);
//! * [`opt`] — optional constant folding / dead-branch elimination (the
//!   `-O0` vs `-O1` ablation; the default stays `-O0` for profile
//!   fidelity).

pub mod ast;
pub mod check;
pub mod codegen;
pub mod dsl;
pub mod interp;
pub mod layout;
pub mod opt;

pub use ast::{
    BinOp, ElemTy, Expr, Function, GlobalDef, GlobalInit, Module, Param, Stmt, Ty, UnOp,
};
pub use check::{check, CompileError};
pub use codegen::{compile, Compiled};
pub use interp::{CallOutcome, Interp, InterpError, Value};
pub use layout::{GlobalLayout, GlobalSlot};
pub use opt::{fold_expr, fold_module, fold_module_with_stats, FoldStats};
