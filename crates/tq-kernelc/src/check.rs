//! Static checking of kernel modules.
//!
//! The language is deliberately rigid — no implicit conversions, flat
//! per-function scopes — so that the reference interpreter and the code
//! generator cannot diverge on meaning. Everything the code generator
//! assumes is validated here first.

use crate::ast::*;
use std::collections::HashMap;

/// A compile-time error (shared by the checker and the code generator).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// `main` is missing.
    NoMain,
    /// `main` must take no parameters.
    MainHasParams,
    /// Two functions share a name.
    DuplicateFunction(String),
    /// Two globals share a name.
    DuplicateGlobal(String),
    /// A referenced variable is not declared.
    UnknownVar(String, String),
    /// A referenced global does not exist.
    UnknownGlobal(String, String),
    /// A called function does not exist.
    UnknownFunction(String, String),
    /// A variable is used at two different types.
    TypeMismatch {
        /// Function containing the problem.
        func: String,
        /// Explanation.
        what: String,
    },
    /// Wrong number of call arguments.
    ArgCount {
        /// Function containing the call.
        func: String,
        /// Callee.
        callee: String,
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// An expression nests deeper than the scratch register file.
    ExprTooDeep(String),
    /// A library routine calls a main-image routine (the link model forbids
    /// upward calls, as a real shared library cannot call statically into
    /// the executable).
    LibraryCallsMain {
        /// Library routine.
        lib: String,
        /// Main-image callee.
        callee: String,
    },
    /// Global initialiser does not fit or has the wrong type.
    BadGlobalInit(String),
    /// Too many arguments of one kind for the register convention.
    TooManyArgs(String),
    /// `break`/`continue` outside a loop.
    BreakOutsideLoop(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NoMain => write!(f, "module has no `main`"),
            CompileError::MainHasParams => write!(f, "`main` must not take parameters"),
            CompileError::DuplicateFunction(n) => write!(f, "duplicate function `{n}`"),
            CompileError::DuplicateGlobal(n) => write!(f, "duplicate global `{n}`"),
            CompileError::UnknownVar(func, n) => write!(f, "in `{func}`: unknown variable `{n}`"),
            CompileError::UnknownGlobal(func, n) => write!(f, "in `{func}`: unknown global `{n}`"),
            CompileError::UnknownFunction(func, n) => {
                write!(f, "in `{func}`: call to unknown function `{n}`")
            }
            CompileError::TypeMismatch { func, what } => write!(f, "in `{func}`: {what}"),
            CompileError::ArgCount {
                func,
                callee,
                expected,
                got,
            } => write!(
                f,
                "in `{func}`: call to `{callee}` expects {expected} arguments, got {got}"
            ),
            CompileError::ExprTooDeep(func) => {
                write!(
                    f,
                    "in `{func}`: expression exceeds the scratch register file"
                )
            }
            CompileError::LibraryCallsMain { lib, callee } => {
                write!(
                    f,
                    "library routine `{lib}` calls main-image routine `{callee}`"
                )
            }
            CompileError::BadGlobalInit(n) => write!(f, "bad initialiser for global `{n}`"),
            CompileError::TooManyArgs(func) => {
                write!(
                    f,
                    "in `{func}`: more arguments of one kind than argument registers"
                )
            }
            CompileError::BreakOutsideLoop(func) => {
                write!(f, "in `{func}`: break/continue outside a loop")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Per-function signature table used by both checker and codegen.
pub(crate) struct Signatures<'m> {
    pub by_name: HashMap<&'m str, &'m Function>,
}

impl<'m> Signatures<'m> {
    pub fn build(module: &'m Module) -> Result<Self, CompileError> {
        let mut by_name = HashMap::new();
        for f in &module.functions {
            if by_name.insert(f.name.as_str(), f).is_some() {
                return Err(CompileError::DuplicateFunction(f.name.clone()));
            }
        }
        Ok(Signatures { by_name })
    }
}

struct Ck<'m> {
    module: &'m Module,
    sigs: Signatures<'m>,
    globals: HashMap<&'m str, &'m GlobalDef>,
}

/// Type-check a module. On success the code generator can run without
/// re-validating.
pub fn check(module: &Module) -> Result<(), CompileError> {
    let sigs = Signatures::build(module)?;
    let mut globals = HashMap::new();
    for g in &module.globals {
        if globals.insert(g.name.as_str(), g).is_some() {
            return Err(CompileError::DuplicateGlobal(g.name.clone()));
        }
        check_global_init(g)?;
    }

    let main = module.function("main").ok_or(CompileError::NoMain)?;
    if !main.params.is_empty() {
        return Err(CompileError::MainHasParams);
    }

    let ck = Ck {
        module,
        sigs,
        globals,
    };
    for f in &ck.module.functions {
        ck.check_fn(f)?;
    }
    Ok(())
}

fn check_global_init(g: &GlobalDef) -> Result<(), CompileError> {
    let size = g.elem.size() as u64 * g.len;
    let ok = match &g.init {
        GlobalInit::Zero => true,
        GlobalInit::Bytes(b) => b.len() as u64 <= size,
        GlobalInit::F64s(v) => matches!(g.elem, ElemTy::F64) && v.len() as u64 <= g.len,
        GlobalInit::I64s(v) => matches!(g.elem, ElemTy::I64) && v.len() as u64 <= g.len,
    };
    if ok {
        Ok(())
    } else {
        Err(CompileError::BadGlobalInit(g.name.clone()))
    }
}

impl<'m> Ck<'m> {
    fn check_fn(&self, f: &Function) -> Result<(), CompileError> {
        let mut vars: HashMap<String, Ty> = HashMap::new();
        for p in &f.params {
            if vars.insert(p.name.clone(), p.ty).is_some() {
                return Err(CompileError::TypeMismatch {
                    func: f.name.clone(),
                    what: format!("duplicate parameter `{}`", p.name),
                });
            }
        }
        let (ints, floats) = split_counts(f.params.iter().map(|p| p.ty));
        if ints > tq_isa::abi::INT_ARGS.len() || floats > tq_isa::abi::FLOAT_ARGS.len() {
            return Err(CompileError::TooManyArgs(f.name.clone()));
        }
        self.check_block(f, &f.body, &mut vars, 0)
    }

    fn check_block(
        &self,
        f: &Function,
        body: &[Stmt],
        vars: &mut HashMap<String, Ty>,
        loop_depth: u32,
    ) -> Result<(), CompileError> {
        for s in body {
            self.check_stmt(f, s, vars, loop_depth)?;
        }
        Ok(())
    }

    fn expect(
        &self,
        f: &Function,
        e: &Expr,
        ty: Ty,
        vars: &HashMap<String, Ty>,
        what: &str,
    ) -> Result<(), CompileError> {
        let t = self.ty_of(f, e, vars)?;
        if t != ty {
            return Err(CompileError::TypeMismatch {
                func: f.name.clone(),
                what: format!("{what}: expected {ty:?}, found {t:?}"),
            });
        }
        Ok(())
    }

    fn check_stmt(
        &self,
        f: &Function,
        s: &Stmt,
        vars: &mut HashMap<String, Ty>,
        loop_depth: u32,
    ) -> Result<(), CompileError> {
        match s {
            Stmt::Let { var, ty, init } => {
                self.expect(f, init, *ty, vars, &format!("initialiser of `{var}`"))?;
                if let Some(prev) = vars.insert(var.clone(), *ty) {
                    if prev != *ty {
                        return Err(CompileError::TypeMismatch {
                            func: f.name.clone(),
                            what: format!("`{var}` redeclared at a different type"),
                        });
                    }
                }
            }
            Stmt::Assign { var, e } => {
                let ty = *vars
                    .get(var)
                    .ok_or_else(|| CompileError::UnknownVar(f.name.clone(), var.clone()))?;
                self.expect(f, e, ty, vars, &format!("assignment to `{var}`"))?;
            }
            Stmt::Store {
                base,
                elem,
                idx,
                val,
            } => {
                self.expect(f, base, Ty::I64, vars, "store base")?;
                self.expect(f, idx, Ty::I64, vars, "store index")?;
                self.expect(f, val, elem.scalar(), vars, "stored value")?;
            }
            Stmt::If { cond, then, els } => {
                self.expect(f, cond, Ty::I64, vars, "if condition")?;
                self.check_block(f, then, vars, loop_depth)?;
                self.check_block(f, els, vars, loop_depth)?;
            }
            Stmt::While { cond, body } => {
                self.expect(f, cond, Ty::I64, vars, "while condition")?;
                self.check_block(f, body, vars, loop_depth + 1)?;
            }
            Stmt::For { var, lo, hi, body } => {
                self.expect(f, lo, Ty::I64, vars, "for lower bound")?;
                self.expect(f, hi, Ty::I64, vars, "for upper bound")?;
                if let Some(prev) = vars.insert(var.clone(), Ty::I64) {
                    if prev != Ty::I64 {
                        return Err(CompileError::TypeMismatch {
                            func: f.name.clone(),
                            what: format!("loop variable `{var}` previously declared as f64"),
                        });
                    }
                }
                self.check_block(f, body, vars, loop_depth + 1)?;
            }
            Stmt::Break | Stmt::Continue => {
                if loop_depth == 0 {
                    return Err(CompileError::BreakOutsideLoop(f.name.clone()));
                }
            }
            Stmt::Call { func, args, ret } => {
                let callee = self
                    .sigs
                    .by_name
                    .get(func.as_str())
                    .copied()
                    .ok_or_else(|| CompileError::UnknownFunction(f.name.clone(), func.clone()))?;
                if f.library && !callee.library {
                    return Err(CompileError::LibraryCallsMain {
                        lib: f.name.clone(),
                        callee: callee.name.clone(),
                    });
                }
                if args.len() != callee.params.len() {
                    return Err(CompileError::ArgCount {
                        func: f.name.clone(),
                        callee: func.clone(),
                        expected: callee.params.len(),
                        got: args.len(),
                    });
                }
                for (a, p) in args.iter().zip(&callee.params) {
                    self.expect(f, a, p.ty, vars, &format!("argument `{}`", p.name))?;
                }
                if let Some(rv) = ret {
                    let rty = callee.ret.ok_or_else(|| CompileError::TypeMismatch {
                        func: f.name.clone(),
                        what: format!("`{func}` returns nothing but result is bound"),
                    })?;
                    let vty = *vars
                        .get(rv)
                        .ok_or_else(|| CompileError::UnknownVar(f.name.clone(), rv.clone()))?;
                    if vty != rty {
                        return Err(CompileError::TypeMismatch {
                            func: f.name.clone(),
                            what: format!("result of `{func}` bound to `{rv}` of wrong type"),
                        });
                    }
                }
            }
            Stmt::Host { func: _, args, ret } => {
                let (ints, floats) = split_counts(
                    args.iter()
                        .map(|a| self.ty_of(f, a, vars))
                        .collect::<Result<Vec<_>, _>>()?
                        .into_iter(),
                );
                if ints > tq_isa::abi::INT_ARGS.len() || floats > tq_isa::abi::FLOAT_ARGS.len() {
                    return Err(CompileError::TooManyArgs(f.name.clone()));
                }
                if let Some(rv) = ret {
                    let vty = *vars
                        .get(rv)
                        .ok_or_else(|| CompileError::UnknownVar(f.name.clone(), rv.clone()))?;
                    if vty != Ty::I64 {
                        return Err(CompileError::TypeMismatch {
                            func: f.name.clone(),
                            what: format!("host result bound to non-i64 `{rv}`"),
                        });
                    }
                }
            }
            Stmt::MemCpy { dst, src, bytes } => {
                self.expect(f, dst, Ty::I64, vars, "memcpy destination")?;
                self.expect(f, src, Ty::I64, vars, "memcpy source")?;
                self.expect(f, bytes, Ty::I64, vars, "memcpy length")?;
            }
            Stmt::Prefetch { base, idx } => {
                self.expect(f, base, Ty::I64, vars, "prefetch base")?;
                self.expect(f, idx, Ty::I64, vars, "prefetch index")?;
            }
            Stmt::Return(e) => match (e, f.ret) {
                (None, None) => {}
                (Some(e), Some(ty)) => self.expect(f, e, ty, vars, "return value")?,
                (None, Some(_)) => {
                    return Err(CompileError::TypeMismatch {
                        func: f.name.clone(),
                        what: "empty return in a function returning a value".into(),
                    })
                }
                (Some(_), None) => {
                    return Err(CompileError::TypeMismatch {
                        func: f.name.clone(),
                        what: "value returned from a void function".into(),
                    })
                }
            },
        }
        Ok(())
    }

    /// The type of an expression; errors on unknown names and misuse.
    pub(crate) fn ty_of(
        &self,
        f: &Function,
        e: &Expr,
        vars: &HashMap<String, Ty>,
    ) -> Result<Ty, CompileError> {
        Ok(match e {
            Expr::ConstI(_) => Ty::I64,
            Expr::ConstF(_) => Ty::F64,
            Expr::Var(n) => *vars
                .get(n)
                .ok_or_else(|| CompileError::UnknownVar(f.name.clone(), n.clone()))?,
            Expr::GlobalAddr(n) => {
                if !self.globals.contains_key(n.as_str()) {
                    return Err(CompileError::UnknownGlobal(f.name.clone(), n.clone()));
                }
                Ty::I64
            }
            Expr::Load { base, elem, idx } => {
                self.expect(f, base, Ty::I64, vars, "load base")?;
                self.expect(f, idx, Ty::I64, vars, "load index")?;
                elem.scalar()
            }
            Expr::Bin { op, lhs, rhs } => {
                let lt = self.ty_of(f, lhs, vars)?;
                let rt = self.ty_of(f, rhs, vars)?;
                if lt != rt {
                    return Err(CompileError::TypeMismatch {
                        func: f.name.clone(),
                        what: format!("operands of {op:?} have different types"),
                    });
                }
                let int_only = matches!(
                    op,
                    BinOp::Rem
                        | BinOp::And
                        | BinOp::Or
                        | BinOp::Xor
                        | BinOp::Shl
                        | BinOp::Shr
                        | BinOp::Sra
                );
                let float_only = matches!(op, BinOp::Min | BinOp::Max);
                if int_only && lt != Ty::I64 {
                    return Err(CompileError::TypeMismatch {
                        func: f.name.clone(),
                        what: format!("{op:?} requires i64 operands"),
                    });
                }
                if float_only && lt != Ty::F64 {
                    return Err(CompileError::TypeMismatch {
                        func: f.name.clone(),
                        what: format!("{op:?} requires f64 operands"),
                    });
                }
                match op {
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        Ty::I64
                    }
                    _ => lt,
                }
            }
            Expr::Un { op, e } => {
                let t = self.ty_of(f, e, vars)?;
                match op {
                    UnOp::Neg => t,
                    UnOp::Abs | UnOp::Sqrt | UnOp::Sin | UnOp::Cos => {
                        if t != Ty::F64 {
                            return Err(CompileError::TypeMismatch {
                                func: f.name.clone(),
                                what: format!("{op:?} requires an f64 operand"),
                            });
                        }
                        Ty::F64
                    }
                    UnOp::I2F => {
                        if t != Ty::I64 {
                            return Err(CompileError::TypeMismatch {
                                func: f.name.clone(),
                                what: "i2f requires an i64 operand".into(),
                            });
                        }
                        Ty::F64
                    }
                    UnOp::F2I => {
                        if t != Ty::F64 {
                            return Err(CompileError::TypeMismatch {
                                func: f.name.clone(),
                                what: "f2i requires an f64 operand".into(),
                            });
                        }
                        Ty::I64
                    }
                }
            }
        })
    }
}

fn split_counts(tys: impl Iterator<Item = Ty>) -> (usize, usize) {
    let mut ints = 0;
    let mut floats = 0;
    for t in tys {
        match t {
            Ty::I64 => ints += 1,
            Ty::F64 => floats += 1,
        }
    }
    (ints, floats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    fn module_with_main(body: Vec<Stmt>) -> Module {
        let mut m = Module::new("t");
        m.func(Function::new("main").body(body));
        m
    }

    #[test]
    fn missing_main_rejected() {
        let m = Module::new("t");
        assert_eq!(check(&m), Err(CompileError::NoMain));
    }

    #[test]
    fn main_with_params_rejected() {
        let mut m = Module::new("t");
        m.func(Function::new("main").param("x", Ty::I64));
        assert_eq!(check(&m), Err(CompileError::MainHasParams));
    }

    #[test]
    fn simple_ok() {
        let m = module_with_main(vec![
            leti("x", ci(1)),
            letf("y", cf(2.0)),
            set("x", add(v("x"), ci(1))),
            set("y", mul(v("y"), cf(3.0))),
        ]);
        assert_eq!(check(&m), Ok(()));
    }

    #[test]
    fn type_confusion_rejected() {
        let m = module_with_main(vec![leti("x", cf(1.0))]);
        assert!(matches!(check(&m), Err(CompileError::TypeMismatch { .. })));

        let m = module_with_main(vec![leti("x", ci(1)), set("x", cf(1.0))]);
        assert!(matches!(check(&m), Err(CompileError::TypeMismatch { .. })));

        let m = module_with_main(vec![letf("x", cf(1.0)), leti("y", add(v("x"), ci(1)))]);
        assert!(matches!(check(&m), Err(CompileError::TypeMismatch { .. })));
    }

    #[test]
    fn unknown_names_rejected() {
        let m = module_with_main(vec![leti("x", v("nope"))]);
        assert!(matches!(check(&m), Err(CompileError::UnknownVar(..))));

        let m = module_with_main(vec![leti("x", ga("nope"))]);
        assert!(matches!(check(&m), Err(CompileError::UnknownGlobal(..))));

        let m = module_with_main(vec![call("nope", vec![])]);
        assert!(matches!(check(&m), Err(CompileError::UnknownFunction(..))));
    }

    #[test]
    fn call_arity_and_types() {
        let mut m = Module::new("t");
        m.func(
            Function::new("f")
                .param("a", Ty::I64)
                .param("b", Ty::F64)
                .returns(Ty::F64)
                .body(vec![ret(v("b"))]),
        );
        m.func(Function::new("main").body(vec![
            letf("r", cf(0.0)),
            call_ret("r", "f", vec![ci(1), cf(2.0)]),
        ]));
        assert_eq!(check(&m), Ok(()));

        let mut bad = m.clone();
        bad.functions[1].body = vec![call("f", vec![ci(1)])];
        assert!(matches!(check(&bad), Err(CompileError::ArgCount { .. })));

        let mut bad2 = m.clone();
        bad2.functions[1].body = vec![call("f", vec![cf(1.0), cf(2.0)])];
        assert!(matches!(
            check(&bad2),
            Err(CompileError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn library_cannot_call_main_image() {
        let mut m = Module::new("t");
        m.func(Function::new("app_helper"));
        m.func(
            Function::new("lib_fn")
                .in_library()
                .body(vec![call("app_helper", vec![])]),
        );
        m.func(Function::new("main"));
        assert!(matches!(
            check(&m),
            Err(CompileError::LibraryCallsMain { .. })
        ));
    }

    #[test]
    fn int_only_ops_reject_floats() {
        let m = module_with_main(vec![letf("x", cf(1.0)), letf("y", rem(v("x"), v("x")))]);
        assert!(matches!(check(&m), Err(CompileError::TypeMismatch { .. })));
    }

    #[test]
    fn global_init_validation() {
        let mut m = Module::new("t");
        m.global("g", ElemTy::F64, 2, GlobalInit::F64s(vec![1.0, 2.0, 3.0]));
        m.func(Function::new("main"));
        assert!(matches!(check(&m), Err(CompileError::BadGlobalInit(_))));

        let mut m2 = Module::new("t");
        m2.global("g", ElemTy::I32, 2, GlobalInit::F64s(vec![1.0]));
        m2.func(Function::new("main"));
        assert!(matches!(check(&m2), Err(CompileError::BadGlobalInit(_))));
    }

    #[test]
    fn comparisons_produce_i64() {
        let m = module_with_main(vec![
            letf("a", cf(1.0)),
            leti("c", lt(v("a"), cf(2.0))),
            if_(v("c"), vec![leti("x", ci(1))]),
        ]);
        assert_eq!(check(&m), Ok(()));
    }
}
