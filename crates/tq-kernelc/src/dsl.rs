//! Terse constructors for building kernel ASTs in Rust.
//!
//! The wfs application (21 kernels) is assembled with these helpers; they
//! keep kernel definitions close to the pseudo-C shape of the original
//! sources.

use crate::ast::{BinOp, ElemTy, Expr, Stmt, Ty, UnOp};
use tq_isa::HostFn;

/// Integer literal.
pub fn ci(v: i64) -> Expr {
    Expr::ConstI(v)
}

/// Float literal.
pub fn cf(v: f64) -> Expr {
    Expr::ConstF(v)
}

/// Variable read.
pub fn v(name: &str) -> Expr {
    Expr::Var(name.to_string())
}

/// Address of a global array.
pub fn ga(name: &str) -> Expr {
    Expr::GlobalAddr(name.to_string())
}

/// Typed array load.
pub fn load(base: Expr, elem: ElemTy, idx: Expr) -> Expr {
    Expr::Load {
        base: Box::new(base),
        elem,
        idx: Box::new(idx),
    }
}

/// `f64` array load.
pub fn ldf(base: Expr, idx: Expr) -> Expr {
    load(base, ElemTy::F64, idx)
}

/// `i64` array load.
pub fn ldi(base: Expr, idx: Expr) -> Expr {
    load(base, ElemTy::I64, idx)
}

fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    Expr::Bin {
        op,
        lhs: Box::new(a),
        rhs: Box::new(b),
    }
}

/// `a + b`.
pub fn add(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Add, a, b)
}
/// `a - b`.
pub fn sub(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Sub, a, b)
}
/// `a * b`.
pub fn mul(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Mul, a, b)
}
/// `a / b`.
pub fn div(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Div, a, b)
}
/// `a % b` (integers).
pub fn rem(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Rem, a, b)
}
/// Bitwise and.
pub fn band(a: Expr, b: Expr) -> Expr {
    bin(BinOp::And, a, b)
}
/// Bitwise or.
pub fn bor(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Or, a, b)
}
/// Bitwise xor.
pub fn bxor(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Xor, a, b)
}
/// Left shift.
pub fn shl(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Shl, a, b)
}
/// Logical right shift.
pub fn shr(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Shr, a, b)
}
/// `a < b` (0/1).
pub fn lt(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Lt, a, b)
}
/// `a <= b`.
pub fn le(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Le, a, b)
}
/// `a > b`.
pub fn gt(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Gt, a, b)
}
/// `a >= b`.
pub fn ge(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Ge, a, b)
}
/// `a == b`.
pub fn eq(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Eq, a, b)
}
/// `a != b`.
pub fn ne(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Ne, a, b)
}
/// `min(a, b)` (floats).
pub fn fmin(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Min, a, b)
}
/// `max(a, b)` (floats).
pub fn fmax(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Max, a, b)
}

fn un(op: UnOp, e: Expr) -> Expr {
    Expr::Un { op, e: Box::new(e) }
}

/// `-e`.
pub fn neg(e: Expr) -> Expr {
    un(UnOp::Neg, e)
}
/// `|e|` (float).
pub fn fabs(e: Expr) -> Expr {
    un(UnOp::Abs, e)
}
/// `√e`.
pub fn sqrt(e: Expr) -> Expr {
    un(UnOp::Sqrt, e)
}
/// `sin e`.
pub fn sin(e: Expr) -> Expr {
    un(UnOp::Sin, e)
}
/// `cos e`.
pub fn cos(e: Expr) -> Expr {
    un(UnOp::Cos, e)
}
/// `i64` → `f64`.
pub fn i2f(e: Expr) -> Expr {
    un(UnOp::I2F, e)
}
/// `f64` → `i64`.
pub fn f2i(e: Expr) -> Expr {
    un(UnOp::F2I, e)
}

/// Declare an `i64` local.
pub fn leti(var: &str, init: Expr) -> Stmt {
    Stmt::Let {
        var: var.to_string(),
        ty: Ty::I64,
        init,
    }
}

/// Declare an `f64` local.
pub fn letf(var: &str, init: Expr) -> Stmt {
    Stmt::Let {
        var: var.to_string(),
        ty: Ty::F64,
        init,
    }
}

/// Assign to a local.
pub fn set(var: &str, e: Expr) -> Stmt {
    Stmt::Assign {
        var: var.to_string(),
        e,
    }
}

/// Typed array store.
pub fn store(base: Expr, elem: ElemTy, idx: Expr, val: Expr) -> Stmt {
    Stmt::Store {
        base,
        elem,
        idx,
        val,
    }
}

/// `f64` array store.
pub fn stf(base: Expr, idx: Expr, val: Expr) -> Stmt {
    store(base, ElemTy::F64, idx, val)
}

/// `i64` array store.
pub fn sti(base: Expr, idx: Expr, val: Expr) -> Stmt {
    store(base, ElemTy::I64, idx, val)
}

/// `if cond { then }`.
pub fn if_(cond: Expr, then: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then,
        els: Vec::new(),
    }
}

/// `if cond { then } else { els }`.
pub fn if_else(cond: Expr, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
    Stmt::If { cond, then, els }
}

/// `while cond { body }`.
pub fn while_(cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::While { cond, body }
}

/// `for var in lo..hi { body }`.
pub fn for_(var: &str, lo: Expr, hi: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        var: var.to_string(),
        lo,
        hi,
        body,
    }
}

/// Call with no result.
pub fn call(func: &str, args: Vec<Expr>) -> Stmt {
    Stmt::Call {
        func: func.to_string(),
        args,
        ret: None,
    }
}

/// Call binding the result to `ret`.
pub fn call_ret(ret: &str, func: &str, args: Vec<Expr>) -> Stmt {
    Stmt::Call {
        func: func.to_string(),
        args,
        ret: Some(ret.to_string()),
    }
}

/// Host call with no result.
pub fn host(func: HostFn, args: Vec<Expr>) -> Stmt {
    Stmt::Host {
        func,
        args,
        ret: None,
    }
}

/// Host call binding the integer result to `ret`.
pub fn host_ret(ret: &str, func: HostFn, args: Vec<Expr>) -> Stmt {
    Stmt::Host {
        func,
        args,
        ret: Some(ret.to_string()),
    }
}

/// Block copy (single-instruction `memcpy`).
pub fn memcpy_(dst: Expr, src: Expr, bytes: Expr) -> Stmt {
    Stmt::MemCpy { dst, src, bytes }
}

/// Software prefetch.
pub fn prefetch(base: Expr, idx: Expr) -> Stmt {
    Stmt::Prefetch { base, idx }
}

/// `return e`.
pub fn ret(e: Expr) -> Stmt {
    Stmt::Return(Some(e))
}

/// `return` (void).
pub fn ret_void() -> Stmt {
    Stmt::Return(None)
}

/// `break` out of the innermost loop.
pub fn brk() -> Stmt {
    Stmt::Break
}

/// `continue` the innermost loop.
pub fn cont() -> Stmt {
    Stmt::Continue
}
