//! The typed AST of the kernel language.
//!
//! The *hArtes wfs* application is written in this small imperative language
//! (scalars of `i64`/`f64`, typed arrays, loops, calls) and compiled to the
//! VM's ISA with a deliberately simple, `-O0`-like code generator: every
//! scalar local lives in a stack slot and is loaded/stored at each use. That
//! choice is what gives compiled kernels the *stack-area memory traffic* the
//! paper's include/exclude-stack experiments are about — e.g. `zeroRealVec`
//! reads its loop counter from the stack thousands of times while writing a
//! global buffer once per element, reproducing the > 300× stack-to-global
//! ratios of Table II.

use tq_isa::HostFn;

/// Scalar type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ty {
    /// 64-bit signed integer (also used for pointers).
    I64,
    /// 64-bit float.
    F64,
}

/// Array element type; determines access width and extension behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElemTy {
    /// Signed byte (sign-extended on load).
    I8,
    /// Signed 16-bit (sign-extended on load) — PCM audio samples.
    I16,
    /// Signed 32-bit (sign-extended on load).
    I32,
    /// 64-bit integer.
    I64,
    /// Unsigned byte.
    U8,
    /// Unsigned 16-bit.
    U16,
    /// Unsigned 32-bit.
    U32,
    /// 32-bit float (widened to `f64` on load, narrowed on store).
    F32,
    /// 64-bit float.
    F64,
}

impl ElemTy {
    /// Element size in bytes.
    pub fn size(self) -> u32 {
        match self {
            ElemTy::I8 | ElemTy::U8 => 1,
            ElemTy::I16 | ElemTy::U16 => 2,
            ElemTy::I32 | ElemTy::U32 | ElemTy::F32 => 4,
            ElemTy::I64 | ElemTy::F64 => 8,
        }
    }

    /// The scalar type produced by loading an element.
    pub fn scalar(self) -> Ty {
        match self {
            ElemTy::F32 | ElemTy::F64 => Ty::F64,
            _ => Ty::I64,
        }
    }
}

/// Binary operators. Integer and float uses are disambiguated by operand
/// type; comparison results are always `i64` 0/1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (`i64`: signed, ÷0 → 0; `f64`: IEEE).
    Div,
    /// Remainder (`i64` only; %0 → 0).
    Rem,
    /// Bitwise and (`i64` only).
    And,
    /// Bitwise or (`i64` only).
    Or,
    /// Bitwise xor (`i64` only).
    Xor,
    /// Left shift (`i64` only; count masked to 63).
    Shl,
    /// Logical right shift (`i64` only).
    Shr,
    /// Arithmetic right shift (`i64` only).
    Sra,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Minimum (`f64` only).
    Min,
    /// Maximum (`f64` only).
    Max,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Absolute value (`f64` only).
    Abs,
    /// Square root (`f64` only).
    Sqrt,
    /// Sine (`f64` only).
    Sin,
    /// Cosine (`f64` only).
    Cos,
    /// `i64` → `f64`.
    I2F,
    /// `f64` → `i64` (truncating).
    F2I,
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    ConstI(i64),
    /// Float literal.
    ConstF(f64),
    /// Read a scalar local or parameter.
    Var(String),
    /// Absolute address of a global array (an `i64`).
    GlobalAddr(String),
    /// Load `elem` element number `idx` from the array at address `base`.
    Load {
        /// Base address expression (`i64`).
        base: Box<Expr>,
        /// Element type (width + extension).
        elem: ElemTy,
        /// Element index (`i64`).
        idx: Box<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        e: Box<Expr>,
    },
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// Declare (or re-initialise) a scalar local.
    Let {
        /// Variable name.
        var: String,
        /// Declared type.
        ty: Ty,
        /// Initial value.
        init: Expr,
    },
    /// Assign to an existing local.
    Assign {
        /// Variable name.
        var: String,
        /// New value.
        e: Expr,
    },
    /// Store `val` as `elem` element number `idx` of the array at `base`.
    Store {
        /// Base address (`i64`).
        base: Expr,
        /// Element type.
        elem: ElemTy,
        /// Element index (`i64`).
        idx: Expr,
        /// Value.
        val: Expr,
    },
    /// Conditional.
    If {
        /// Condition (`i64`, non-zero = true).
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
    },
    /// While loop.
    While {
        /// Condition (`i64`).
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Counted loop: `for var in lo..hi` (step 1). `hi` is evaluated once.
    For {
        /// Induction variable (an `i64` local).
        var: String,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Call a function; optionally bind the result to a pre-declared local.
    Call {
        /// Callee name.
        func: String,
        /// Arguments (matched against the callee's parameters).
        args: Vec<Expr>,
        /// Destination local for the return value.
        ret: Option<String>,
    },
    /// Invoke a VM host function; integer args map to `A0..`, float args to
    /// `FA0..`, an integer result lands in the destination local.
    Host {
        /// Host function.
        func: HostFn,
        /// Arguments.
        args: Vec<Expr>,
        /// Destination local for the result (integer host results only).
        ret: Option<String>,
    },
    /// Block copy of `bytes` bytes from address `src` to address `dst` —
    /// lowers to the ISA's single-instruction `BCpy` (`rep movs`-style).
    MemCpy {
        /// Destination address (`i64`).
        dst: Expr,
        /// Source address (`i64`).
        src: Expr,
        /// Byte count (`i64`).
        bytes: Expr,
    },
    /// Software prefetch of element `idx` of the array at `base`.
    Prefetch {
        /// Base address (`i64`).
        base: Expr,
        /// Element index, in 8-byte units.
        idx: Expr,
    },
    /// Return from the function.
    Return(Option<Expr>),
    /// Exit the innermost enclosing loop.
    Break,
    /// Jump to the next iteration of the innermost enclosing loop (a
    /// `For` loop still performs its increment).
    Continue,
}

/// A function parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    /// Name (becomes a local).
    pub name: String,
    /// Type (`I64` doubles as pointer).
    pub ty: Ty,
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type, if any.
    pub ret: Option<Ty>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Place this function in the `libsim` library image instead of the
    /// main image (runtime-support routines; tQUAD can exclude them).
    pub library: bool,
}

impl Function {
    /// Construct an empty main-image function.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            ret: None,
            body: Vec::new(),
            library: false,
        }
    }

    /// Add a parameter.
    pub fn param(mut self, name: impl Into<String>, ty: Ty) -> Self {
        self.params.push(Param {
            name: name.into(),
            ty,
        });
        self
    }

    /// Set the return type.
    pub fn returns(mut self, ty: Ty) -> Self {
        self.ret = Some(ty);
        self
    }

    /// Mark as a library (non-main-image) routine.
    pub fn in_library(mut self) -> Self {
        self.library = true;
        self
    }

    /// Set the body.
    pub fn body(mut self, body: Vec<Stmt>) -> Self {
        self.body = body;
        self
    }
}

/// Initial contents of a global array.
#[derive(Clone, PartialEq, Debug)]
pub enum GlobalInit {
    /// Zero-filled.
    Zero,
    /// Raw bytes (must not exceed the array size).
    Bytes(Vec<u8>),
    /// `f64` values (for `F64` arrays).
    F64s(Vec<f64>),
    /// `i64` values (for `I64` arrays).
    I64s(Vec<i64>),
}

/// A global array definition.
#[derive(Clone, PartialEq, Debug)]
pub struct GlobalDef {
    /// Name, referenced by [`Expr::GlobalAddr`].
    pub name: String,
    /// Element type.
    pub elem: ElemTy,
    /// Number of elements.
    pub len: u64,
    /// Initial contents.
    pub init: GlobalInit,
}

/// A compilation unit: globals plus functions; `main` is the entry point.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// Module name (becomes the image name).
    pub name: String,
    /// Global arrays.
    pub globals: Vec<GlobalDef>,
    /// Functions; must contain `main`.
    pub functions: Vec<Function>,
}

impl Module {
    /// New empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a global array.
    pub fn global(&mut self, name: impl Into<String>, elem: ElemTy, len: u64, init: GlobalInit) {
        self.globals.push(GlobalDef {
            name: name.into(),
            elem,
            len,
            init,
        });
    }

    /// Add a function.
    pub fn func(&mut self, f: Function) {
        self.functions.push(f);
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes_and_scalars() {
        assert_eq!(ElemTy::I8.size(), 1);
        assert_eq!(ElemTy::I16.size(), 2);
        assert_eq!(ElemTy::F32.size(), 4);
        assert_eq!(ElemTy::F64.size(), 8);
        assert_eq!(ElemTy::I16.scalar(), Ty::I64);
        assert_eq!(ElemTy::F32.scalar(), Ty::F64);
    }

    #[test]
    fn builders() {
        let f = Function::new("f")
            .param("x", Ty::I64)
            .returns(Ty::I64)
            .in_library()
            .body(vec![Stmt::Return(Some(Expr::Var("x".into())))]);
        assert_eq!(f.params.len(), 1);
        assert!(f.library);

        let mut m = Module::new("m");
        m.global("buf", ElemTy::F64, 16, GlobalInit::Zero);
        m.func(f);
        assert!(m.function("f").is_some());
        assert!(m.function("g").is_none());
    }
}
