//! Lowering from the kernel AST to the VM ISA.
//!
//! The code generator is intentionally `-O0`-shaped:
//!
//! * every scalar local (and every parameter) lives in an 8-byte stack slot
//!   and is loaded/stored at each use;
//! * call and host-call arguments are staged through hidden stack slots
//!   before being moved into the argument registers;
//! * expression temporaries live in the scratch register files.
//!
//! This is what unoptimised compiler output looks like, and it matters for
//! fidelity: the paper's include/exclude-stack-accesses experiments rely on
//! kernels with heavy local (stack) traffic next to their global traffic.
//! Float literals that are not exactly representable in `f32` are placed in
//! a constant pool in the data segment and loaded with `FLd` — also what
//! real compilers do, and another source of (global) memory traffic.

use crate::ast::*;
use crate::check::{check, CompileError, Signatures};
use crate::layout::GlobalLayout;
use std::collections::HashMap;
use tq_isa::{abi, Asm, BrCond, FReg, Inst, MemWidth, Program, Reg};
use tq_vm::layout::{LIB_TEXT_BASE, MAIN_TEXT_BASE};

/// Result of compiling a module.
pub struct Compiled {
    /// The runnable program (main image + `libsim` if any library routines
    /// exist).
    pub program: Program,
    /// Where each global array landed (for staging inputs / reading outputs
    /// from tests and the application driver).
    pub layout: GlobalLayout,
}

/// Compile a checked module to a [`Program`].
///
/// ```
/// use tq_kernelc::dsl::*;
/// use tq_kernelc::{compile, ElemTy, Function, GlobalInit, Module};
///
/// let mut m = Module::new("demo");
/// m.global("out", ElemTy::I64, 1, GlobalInit::Zero);
/// m.func(Function::new("main").body(vec![
///     leti("acc", ci(0)),
///     for_("i", ci(1), ci(11), vec![set("acc", add(v("acc"), v("i")))]),
///     sti(ga("out"), ci(0), v("acc")),
/// ]));
///
/// let compiled = compile(&m).unwrap();
/// let mut vm = tq_vm::Vm::new(compiled.program).unwrap();
/// vm.run(None).unwrap();
/// let mut buf = [0u8; 8];
/// vm.mem_read(compiled.layout.get("out").unwrap().addr, &mut buf).unwrap();
/// assert_eq!(u64::from_le_bytes(buf), 55);
/// ```
pub fn compile(module: &Module) -> Result<Compiled, CompileError> {
    check(module)?;
    let layout = GlobalLayout::of(module);
    let sigs = Signatures::build(module)?;

    let mut consts = ConstPool {
        base: layout.end(),
        values: Vec::new(),
    };

    // Library image first: its symbols become externs for the main image.
    let lib_fns: Vec<&Function> = module.functions.iter().filter(|f| f.library).collect();
    let main_fns: Vec<&Function> = module.functions.iter().filter(|f| !f.library).collect();

    let mut externs = HashMap::new();
    let lib_image = if lib_fns.is_empty() {
        None
    } else {
        let mut asm = Asm::new();
        for f in &lib_fns {
            gen_fn(f, &sigs, &layout, &mut consts, &mut asm)?;
        }
        let img =
            asm.finish("libsim", LIB_TEXT_BASE, false)
                .map_err(|e| CompileError::TypeMismatch {
                    func: "<libsim>".into(),
                    what: format!("assembly failed: {e}"),
                })?;
        for r in &img.routines {
            externs.insert(r.name.clone(), r.start);
        }
        Some(img)
    };

    let mut asm = Asm::new();
    for f in &main_fns {
        gen_fn(f, &sigs, &layout, &mut consts, &mut asm)?;
    }

    // Data segments: global initialisers + the float constant pool.
    for g in &module.globals {
        if let Some(bytes) = GlobalLayout::init_bytes(g) {
            let slot = layout.get(&g.name).expect("checked global");
            asm.data(slot.addr, bytes);
        }
    }
    if !consts.values.is_empty() {
        let mut bytes = Vec::with_capacity(consts.values.len() * 8);
        for v in &consts.values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        asm.data(consts.base, bytes);
    }

    let main_image = asm
        .finish_with_externs(module.name.clone(), MAIN_TEXT_BASE, true, &externs)
        .map_err(|e| CompileError::TypeMismatch {
            func: "<main image>".into(),
            what: format!("assembly failed: {e}"),
        })?;

    let entry = main_image
        .routine_named("main")
        .expect("checked module has main")
        .start;
    let mut program = Program::new(main_image, entry);
    if let Some(lib) = lib_image {
        program = program.with_library(lib);
    }
    debug_assert_eq!(program.validate(), Ok(()));
    Ok(Compiled { program, layout })
}

/// Float constant pool, shared across the whole module.
struct ConstPool {
    base: u64,
    values: Vec<f64>,
}

impl ConstPool {
    /// Address of `v` in the pool (deduplicated by bit pattern).
    fn addr_of(&mut self, v: f64) -> u64 {
        let bits = v.to_bits();
        let idx = match self.values.iter().position(|x| x.to_bits() == bits) {
            Some(i) => i,
            None => {
                self.values.push(v);
                self.values.len() - 1
            }
        };
        self.base + idx as u64 * 8
    }
}

/// An expression result: a scratch register of either file.
enum Operand {
    I(Reg),
    F(FReg),
}

struct FnCg<'a> {
    f: &'a Function,
    sigs: &'a Signatures<'a>,
    layout: &'a GlobalLayout,
    consts: &'a mut ConstPool,
    /// name → sp-relative slot offset.
    slots: HashMap<String, i32>,
    var_tys: HashMap<String, Ty>,
    /// Hidden slot offsets in traversal order (For bounds, call staging).
    hidden: Vec<i32>,
    hidden_cursor: usize,
    frame: i32,
    label_n: u64,
    ipool: Vec<Reg>,
    fpool: Vec<FReg>,
    /// `(break target, continue target)` per enclosing loop.
    loop_labels: Vec<(String, String)>,
}

fn gen_fn(
    f: &Function,
    sigs: &Signatures<'_>,
    layout: &GlobalLayout,
    consts: &mut ConstPool,
    asm: &mut Asm,
) -> Result<(), CompileError> {
    let mut cg = FnCg {
        f,
        sigs,
        layout,
        consts,
        slots: HashMap::new(),
        var_tys: HashMap::new(),
        hidden: Vec::new(),
        hidden_cursor: 0,
        frame: 0,
        label_n: 0,
        ipool: abi::TEMPS.to_vec(),
        fpool: abi::FTEMPS.to_vec(),
        loop_labels: Vec::new(),
    };

    // Slot assignment pre-pass: params, then locals and hidden slots in
    // traversal order (the emit pass repeats the same traversal).
    for p in &f.params {
        cg.add_var(&p.name, p.ty);
    }
    cg.scan_block(&f.body);

    asm.begin_routine(f.name.clone())
        .map_err(|e| CompileError::TypeMismatch {
            func: f.name.clone(),
            what: format!("duplicate symbol: {e}"),
        })?;

    // Prologue.
    if cg.frame > 0 {
        asm.emit(Inst::AddI {
            rd: abi::SP,
            rs1: abi::SP,
            imm: -cg.frame,
        });
    }
    let mut ii = 0;
    let mut fi = 0;
    for p in &f.params {
        let off = cg.slots[&p.name];
        match p.ty {
            Ty::I64 => {
                asm.emit(Inst::St {
                    rs: abi::INT_ARGS[ii],
                    base: abi::SP,
                    off,
                    width: MemWidth::B8,
                });
                ii += 1;
            }
            Ty::F64 => {
                asm.emit(Inst::FSt {
                    fs: abi::FLOAT_ARGS[fi],
                    base: abi::SP,
                    off,
                });
                fi += 1;
            }
        }
    }

    for s in &f.body {
        cg.gen_stmt(s, asm)?;
    }

    // Implicit epilogue for fallthrough off the end of the body.
    cg.emit_epilogue(None, asm)?;
    Ok(())
}

impl<'a> FnCg<'a> {
    fn add_var(&mut self, name: &str, ty: Ty) {
        if !self.slots.contains_key(name) {
            self.slots.insert(name.to_string(), self.frame);
            self.var_tys.insert(name.to_string(), ty);
            self.frame += 8;
        }
    }

    fn add_hidden(&mut self, n: usize) {
        for _ in 0..n {
            self.hidden.push(self.frame);
            self.frame += 8;
        }
    }

    /// Pre-pass: discover locals and hidden slots, in the exact order the
    /// emit pass consumes them.
    fn scan_block(&mut self, body: &[Stmt]) {
        for s in body {
            match s {
                Stmt::Let { var, ty, .. } => self.add_var(var, *ty),
                Stmt::For { var, body, .. } => {
                    self.add_var(var, Ty::I64);
                    self.add_hidden(1); // loop bound
                    self.scan_block(body);
                }
                Stmt::If { then, els, .. } => {
                    self.scan_block(then);
                    self.scan_block(els);
                }
                Stmt::While { body, .. } => self.scan_block(body),
                Stmt::Call { args, .. } | Stmt::Host { args, .. } => {
                    self.add_hidden(args.len());
                }
                _ => {}
            }
        }
    }

    fn next_hidden(&mut self) -> i32 {
        let off = self.hidden[self.hidden_cursor];
        self.hidden_cursor += 1;
        off
    }

    fn fresh_label(&mut self, tag: &str) -> String {
        self.label_n += 1;
        format!("{}${}{}", self.f.name, tag, self.label_n)
    }

    fn alloc_i(&mut self) -> Result<Reg, CompileError> {
        self.ipool
            .pop()
            .ok_or_else(|| CompileError::ExprTooDeep(self.f.name.clone()))
    }

    fn alloc_f(&mut self) -> Result<FReg, CompileError> {
        self.fpool
            .pop()
            .ok_or_else(|| CompileError::ExprTooDeep(self.f.name.clone()))
    }

    fn free(&mut self, op: Operand) {
        match op {
            Operand::I(r) => self.ipool.push(r),
            Operand::F(r) => self.fpool.push(r),
        }
    }

    fn slot_of(&self, var: &str) -> i32 {
        self.slots[var]
    }

    fn ty_of_var(&self, var: &str) -> Ty {
        self.var_tys[var]
    }

    fn emit_epilogue(&mut self, value: Option<&Expr>, asm: &mut Asm) -> Result<(), CompileError> {
        if self.f.name == "main" {
            // main exits the VM rather than returning.
            match value {
                Some(e) => {
                    let op = self.gen_expr(e, asm)?;
                    match op {
                        Operand::I(r) => {
                            asm.emit(Inst::Mv { rd: abi::A0, rs: r });
                            self.free(Operand::I(r));
                        }
                        Operand::F(_) => {
                            return Err(CompileError::TypeMismatch {
                                func: self.f.name.clone(),
                                what: "main cannot return f64".into(),
                            })
                        }
                    }
                }
                None => asm.emit(Inst::Li {
                    rd: abi::A0,
                    imm: 0,
                }),
            }
            asm.emit(Inst::Host {
                func: tq_isa::HostFn::Exit,
            });
            return Ok(());
        }
        if let Some(e) = value {
            let op = self.gen_expr(e, asm)?;
            match op {
                Operand::I(r) => {
                    asm.emit(Inst::Mv { rd: abi::A0, rs: r });
                    self.free(Operand::I(r));
                }
                Operand::F(r) => {
                    asm.emit(Inst::FMv {
                        fd: abi::FA0,
                        fs: r,
                    });
                    self.free(Operand::F(r));
                }
            }
        }
        if self.frame > 0 {
            asm.emit(Inst::AddI {
                rd: abi::SP,
                rs1: abi::SP,
                imm: self.frame,
            });
        }
        asm.emit(Inst::Ret);
        Ok(())
    }

    fn gen_stmt(&mut self, s: &Stmt, asm: &mut Asm) -> Result<(), CompileError> {
        match s {
            Stmt::Let { var, init, .. } => {
                let op = self.gen_expr(init, asm)?;
                self.store_var(var, op, asm);
            }
            Stmt::Assign { var, e } => {
                let op = self.gen_expr(e, asm)?;
                self.store_var(var, op, asm);
            }
            Stmt::Store {
                base,
                elem,
                idx,
                val,
            } => {
                let addr = self.gen_addr(base, *elem, idx, asm)?;
                let op = self.gen_expr(val, asm)?;
                match (op, elem) {
                    (Operand::F(fr), ElemTy::F64) => {
                        asm.emit(Inst::FSt {
                            fs: fr,
                            base: addr,
                            off: 0,
                        });
                        self.free(Operand::F(fr));
                    }
                    (Operand::F(fr), ElemTy::F32) => {
                        asm.emit(Inst::FSt4 {
                            fs: fr,
                            base: addr,
                            off: 0,
                        });
                        self.free(Operand::F(fr));
                    }
                    (Operand::I(ir), e) => {
                        let width = match e {
                            ElemTy::I8 | ElemTy::U8 => MemWidth::B1,
                            ElemTy::I16 | ElemTy::U16 => MemWidth::B2,
                            ElemTy::I32 | ElemTy::U32 => MemWidth::B4,
                            ElemTy::I64 => MemWidth::B8,
                            _ => unreachable!("checked store type"),
                        };
                        asm.emit(Inst::St {
                            rs: ir,
                            base: addr,
                            off: 0,
                            width,
                        });
                        self.free(Operand::I(ir));
                    }
                    _ => unreachable!("checked store type"),
                }
                self.free(Operand::I(addr));
            }
            Stmt::If { cond, then, els } => {
                let lelse = self.fresh_label("else");
                let lend = self.fresh_label("endif");
                self.gen_branch_if_false(cond, &lelse, asm)?;
                for st in then {
                    self.gen_stmt(st, asm)?;
                }
                asm.jmp(lend.clone());
                asm.label(lelse).expect("fresh label");
                for st in els {
                    self.gen_stmt(st, asm)?;
                }
                asm.label(lend).expect("fresh label");
            }
            Stmt::While { cond, body } => {
                let lstart = self.fresh_label("while");
                let lend = self.fresh_label("endwhile");
                asm.label(lstart.clone()).expect("fresh label");
                self.gen_branch_if_false(cond, &lend, asm)?;
                // continue re-tests the condition; break exits.
                self.loop_labels.push((lend.clone(), lstart.clone()));
                for st in body {
                    self.gen_stmt(st, asm)?;
                }
                self.loop_labels.pop();
                asm.jmp(lstart);
                asm.label(lend).expect("fresh label");
            }
            Stmt::For { var, lo, hi, body } => {
                let hi_slot = self.next_hidden();
                let var_slot = self.slot_of(var);
                // var = lo
                let op = self.gen_expr(lo, asm)?;
                let Operand::I(r) = op else {
                    unreachable!("checked i64 bound")
                };
                asm.emit(Inst::St {
                    rs: r,
                    base: abi::SP,
                    off: var_slot,
                    width: MemWidth::B8,
                });
                self.free(Operand::I(r));
                // bound = hi (evaluated once)
                let op = self.gen_expr(hi, asm)?;
                let Operand::I(r) = op else {
                    unreachable!("checked i64 bound")
                };
                asm.emit(Inst::St {
                    rs: r,
                    base: abi::SP,
                    off: hi_slot,
                    width: MemWidth::B8,
                });
                self.free(Operand::I(r));

                let lstart = self.fresh_label("for");
                let lstep = self.fresh_label("forstep");
                let lend = self.fresh_label("endfor");
                asm.label(lstart.clone()).expect("fresh label");
                let a = self.alloc_i()?;
                let b = self.alloc_i()?;
                asm.emit(Inst::Ld {
                    rd: a,
                    base: abi::SP,
                    off: var_slot,
                    width: MemWidth::B8,
                });
                asm.emit(Inst::Ld {
                    rd: b,
                    base: abi::SP,
                    off: hi_slot,
                    width: MemWidth::B8,
                });
                asm.br(BrCond::Ge, a, b, lend.clone());
                self.ipool.push(a);
                self.ipool.push(b);
                // continue jumps to the increment; break past it.
                self.loop_labels.push((lend.clone(), lstep.clone()));
                for st in body {
                    self.gen_stmt(st, asm)?;
                }
                self.loop_labels.pop();
                asm.label(lstep).expect("fresh label");
                let a = self.alloc_i()?;
                asm.emit(Inst::Ld {
                    rd: a,
                    base: abi::SP,
                    off: var_slot,
                    width: MemWidth::B8,
                });
                asm.emit(Inst::AddI {
                    rd: a,
                    rs1: a,
                    imm: 1,
                });
                asm.emit(Inst::St {
                    rs: a,
                    base: abi::SP,
                    off: var_slot,
                    width: MemWidth::B8,
                });
                self.ipool.push(a);
                asm.jmp(lstart);
                asm.label(lend).expect("fresh label");
            }
            Stmt::Call { func, args, ret } => {
                let callee = *self
                    .sigs
                    .by_name
                    .get(func.as_str())
                    .expect("checked callee");
                self.gen_args(args, asm)?;
                self.load_args(
                    &callee.params.iter().map(|p| p.ty).collect::<Vec<_>>(),
                    args.len(),
                    asm,
                );
                asm.call(func.clone());
                if let Some(rv) = ret {
                    let off = self.slot_of(rv);
                    match callee.ret.expect("checked ret") {
                        Ty::I64 => asm.emit(Inst::St {
                            rs: abi::A0,
                            base: abi::SP,
                            off,
                            width: MemWidth::B8,
                        }),
                        Ty::F64 => asm.emit(Inst::FSt {
                            fs: abi::FA0,
                            base: abi::SP,
                            off,
                        }),
                    }
                }
            }
            Stmt::Host { func, args, ret } => {
                // Determine arg scalar types for register mapping.
                let tys: Vec<Ty> = args.iter().map(|a| self.expr_ty(a)).collect();
                self.gen_args(args, asm)?;
                self.load_args(&tys, args.len(), asm);
                asm.emit(Inst::Host { func: *func });
                if let Some(rv) = ret {
                    let off = self.slot_of(rv);
                    asm.emit(Inst::St {
                        rs: abi::A0,
                        base: abi::SP,
                        off,
                        width: MemWidth::B8,
                    });
                }
            }
            Stmt::MemCpy { dst, src, bytes } => {
                let d_op = self.gen_expr(dst, asm)?;
                let s_op = self.gen_expr(src, asm)?;
                let n_op = self.gen_expr(bytes, asm)?;
                let (Operand::I(dr), Operand::I(sr), Operand::I(nr)) = (d_op, s_op, n_op) else {
                    unreachable!("checked i64 memcpy operands")
                };
                asm.emit(Inst::BCpy {
                    dst: dr,
                    src: sr,
                    len: nr,
                });
                self.ipool.push(dr);
                self.ipool.push(sr);
                self.ipool.push(nr);
            }
            Stmt::Prefetch { base, idx } => {
                let addr = self.gen_addr(base, ElemTy::I64, idx, asm)?;
                asm.emit(Inst::Prefetch { base: addr, off: 0 });
                self.free(Operand::I(addr));
            }
            Stmt::Return(e) => {
                self.emit_epilogue(e.as_ref(), asm)?;
            }
            Stmt::Break => {
                let (brk, _) = self
                    .loop_labels
                    .last()
                    .expect("checked: inside a loop")
                    .clone();
                asm.jmp(brk);
            }
            Stmt::Continue => {
                let (_, cont) = self
                    .loop_labels
                    .last()
                    .expect("checked: inside a loop")
                    .clone();
                asm.jmp(cont);
            }
        }
        Ok(())
    }

    /// Evaluate call/host arguments into their hidden staging slots, in
    /// order. Consumes one hidden slot per argument.
    fn gen_args(&mut self, args: &[Expr], asm: &mut Asm) -> Result<Vec<i32>, CompileError> {
        let mut offs = Vec::with_capacity(args.len());
        for a in args {
            let off = self.next_hidden();
            let op = self.gen_expr(a, asm)?;
            match op {
                Operand::I(r) => {
                    asm.emit(Inst::St {
                        rs: r,
                        base: abi::SP,
                        off,
                        width: MemWidth::B8,
                    });
                    self.free(Operand::I(r));
                }
                Operand::F(r) => {
                    asm.emit(Inst::FSt {
                        fs: r,
                        base: abi::SP,
                        off,
                    });
                    self.free(Operand::F(r));
                }
            }
            offs.push(off);
        }
        // Remember where they are for load_args (slots were consumed in
        // order, so the last `args.len()` hidden offsets are ours).
        Ok(offs)
    }

    /// Load staged arguments into the argument registers by type order.
    fn load_args(&mut self, tys: &[Ty], n: usize, asm: &mut Asm) {
        let start = self.hidden_cursor - n;
        let mut ii = 0;
        let mut fi = 0;
        for (k, ty) in tys.iter().enumerate() {
            let off = self.hidden[start + k];
            match ty {
                Ty::I64 => {
                    asm.emit(Inst::Ld {
                        rd: abi::INT_ARGS[ii],
                        base: abi::SP,
                        off,
                        width: MemWidth::B8,
                    });
                    ii += 1;
                }
                Ty::F64 => {
                    asm.emit(Inst::FLd {
                        fd: abi::FLOAT_ARGS[fi],
                        base: abi::SP,
                        off,
                    });
                    fi += 1;
                }
            }
        }
    }

    /// Best-effort expression typing for host-arg register mapping (the
    /// checker has already validated the module, so names resolve).
    fn expr_ty(&self, e: &Expr) -> Ty {
        match e {
            Expr::ConstI(_) | Expr::GlobalAddr(_) => Ty::I64,
            Expr::ConstF(_) => Ty::F64,
            Expr::Var(n) => self.ty_of_var(n),
            Expr::Load { elem, .. } => elem.scalar(),
            Expr::Bin { op, lhs, .. } => match op {
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => Ty::I64,
                _ => self.expr_ty(lhs),
            },
            Expr::Un { op, e } => match op {
                UnOp::I2F => Ty::F64,
                UnOp::F2I => Ty::I64,
                UnOp::Abs | UnOp::Sqrt | UnOp::Sin | UnOp::Cos => Ty::F64,
                UnOp::Neg => self.expr_ty(e),
            },
        }
    }

    fn store_var(&mut self, var: &str, op: Operand, asm: &mut Asm) {
        let off = self.slot_of(var);
        match op {
            Operand::I(r) => {
                asm.emit(Inst::St {
                    rs: r,
                    base: abi::SP,
                    off,
                    width: MemWidth::B8,
                });
                self.free(Operand::I(r));
            }
            Operand::F(r) => {
                asm.emit(Inst::FSt {
                    fs: r,
                    base: abi::SP,
                    off,
                });
                self.free(Operand::F(r));
            }
        }
    }

    /// Branch to `target` when `cond` evaluates to zero.
    fn gen_branch_if_false(
        &mut self,
        cond: &Expr,
        target: &str,
        asm: &mut Asm,
    ) -> Result<(), CompileError> {
        let op = self.gen_expr(cond, asm)?;
        let Operand::I(c) = op else {
            unreachable!("checked i64 condition")
        };
        let z = self.alloc_i()?;
        asm.emit(Inst::Li { rd: z, imm: 0 });
        asm.br(BrCond::Eq, c, z, target.to_string());
        self.ipool.push(z);
        self.ipool.push(c);
        Ok(())
    }

    /// Compute `base + idx * elem.size()` into a fresh integer register.
    fn gen_addr(
        &mut self,
        base: &Expr,
        elem: ElemTy,
        idx: &Expr,
        asm: &mut Asm,
    ) -> Result<Reg, CompileError> {
        let b = match self.gen_expr(base, asm)? {
            Operand::I(r) => r,
            Operand::F(_) => unreachable!("checked i64 base"),
        };
        let i = match self.gen_expr(idx, asm)? {
            Operand::I(r) => r,
            Operand::F(_) => unreachable!("checked i64 index"),
        };
        let size = elem.size() as i32;
        if size != 1 {
            asm.emit(Inst::MulI {
                rd: i,
                rs1: i,
                imm: size,
            });
        }
        asm.emit(Inst::Add {
            rd: b,
            rs1: b,
            rs2: i,
        });
        self.ipool.push(i);
        Ok(b)
    }

    fn gen_expr(&mut self, e: &Expr, asm: &mut Asm) -> Result<Operand, CompileError> {
        Ok(match e {
            Expr::ConstI(v) => {
                let r = self.alloc_i()?;
                emit_const_i64(*v, r, asm);
                Operand::I(r)
            }
            Expr::ConstF(v) => {
                let f = self.alloc_f()?;
                if (*v as f32) as f64 == *v {
                    asm.emit(Inst::FLi {
                        fd: f,
                        value: *v as f32,
                    });
                } else {
                    // Full-precision constants come from the pool.
                    let addr = self.consts.addr_of(*v);
                    let r = self.alloc_i()?;
                    emit_const_i64(addr as i64, r, asm);
                    asm.emit(Inst::FLd {
                        fd: f,
                        base: r,
                        off: 0,
                    });
                    self.ipool.push(r);
                }
                Operand::F(f)
            }
            Expr::Var(n) => {
                let off = self.slot_of(n);
                match self.ty_of_var(n) {
                    Ty::I64 => {
                        let r = self.alloc_i()?;
                        asm.emit(Inst::Ld {
                            rd: r,
                            base: abi::SP,
                            off,
                            width: MemWidth::B8,
                        });
                        Operand::I(r)
                    }
                    Ty::F64 => {
                        let f = self.alloc_f()?;
                        asm.emit(Inst::FLd {
                            fd: f,
                            base: abi::SP,
                            off,
                        });
                        Operand::F(f)
                    }
                }
            }
            Expr::GlobalAddr(n) => {
                let slot = self.layout.get(n).expect("checked global");
                let r = self.alloc_i()?;
                emit_const_i64(slot.addr as i64, r, asm);
                Operand::I(r)
            }
            Expr::Load { base, elem, idx } => {
                let addr = self.gen_addr(base, *elem, idx, asm)?;
                match elem {
                    ElemTy::F64 => {
                        let f = self.alloc_f()?;
                        asm.emit(Inst::FLd {
                            fd: f,
                            base: addr,
                            off: 0,
                        });
                        self.ipool.push(addr);
                        Operand::F(f)
                    }
                    ElemTy::F32 => {
                        let f = self.alloc_f()?;
                        asm.emit(Inst::FLd4 {
                            fd: f,
                            base: addr,
                            off: 0,
                        });
                        self.ipool.push(addr);
                        Operand::F(f)
                    }
                    e => {
                        let (width, sign_bits) = match e {
                            ElemTy::I8 => (MemWidth::B1, 56),
                            ElemTy::U8 => (MemWidth::B1, 0),
                            ElemTy::I16 => (MemWidth::B2, 48),
                            ElemTy::U16 => (MemWidth::B2, 0),
                            ElemTy::I32 => (MemWidth::B4, 32),
                            ElemTy::U32 => (MemWidth::B4, 0),
                            ElemTy::I64 => (MemWidth::B8, 0),
                            _ => unreachable!(),
                        };
                        asm.emit(Inst::Ld {
                            rd: addr,
                            base: addr,
                            off: 0,
                            width,
                        });
                        if sign_bits != 0 {
                            asm.emit(Inst::ShlI {
                                rd: addr,
                                rs1: addr,
                                imm: sign_bits,
                            });
                            asm.emit(Inst::SraI {
                                rd: addr,
                                rs1: addr,
                                imm: sign_bits,
                            });
                        }
                        Operand::I(addr)
                    }
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let l = self.gen_expr(lhs, asm)?;
                let r = self.gen_expr(rhs, asm)?;
                self.gen_bin(*op, l, r, asm)?
            }
            Expr::Un { op, e } => {
                let v = self.gen_expr(e, asm)?;
                match (op, v) {
                    (UnOp::Neg, Operand::I(r)) => {
                        let z = self.alloc_i()?;
                        asm.emit(Inst::Li { rd: z, imm: 0 });
                        asm.emit(Inst::Sub {
                            rd: r,
                            rs1: z,
                            rs2: r,
                        });
                        self.ipool.push(z);
                        Operand::I(r)
                    }
                    (UnOp::Neg, Operand::F(f)) => {
                        asm.emit(Inst::FNeg { fd: f, fs: f });
                        Operand::F(f)
                    }
                    (UnOp::Abs, Operand::F(f)) => {
                        asm.emit(Inst::FAbs { fd: f, fs: f });
                        Operand::F(f)
                    }
                    (UnOp::Sqrt, Operand::F(f)) => {
                        asm.emit(Inst::FSqrt { fd: f, fs: f });
                        Operand::F(f)
                    }
                    (UnOp::Sin, Operand::F(f)) => {
                        asm.emit(Inst::FSin { fd: f, fs: f });
                        Operand::F(f)
                    }
                    (UnOp::Cos, Operand::F(f)) => {
                        asm.emit(Inst::FCos { fd: f, fs: f });
                        Operand::F(f)
                    }
                    (UnOp::I2F, Operand::I(r)) => {
                        let f = self.alloc_f()?;
                        asm.emit(Inst::ItoF { fd: f, rs: r });
                        self.ipool.push(r);
                        Operand::F(f)
                    }
                    (UnOp::F2I, Operand::F(f)) => {
                        let r = self.alloc_i()?;
                        asm.emit(Inst::FtoI { rd: r, fs: f });
                        self.fpool.push(f);
                        Operand::I(r)
                    }
                    _ => unreachable!("checked unary op typing"),
                }
            }
        })
    }

    fn gen_bin(
        &mut self,
        op: BinOp,
        l: Operand,
        r: Operand,
        asm: &mut Asm,
    ) -> Result<Operand, CompileError> {
        Ok(match (l, r) {
            (Operand::I(a), Operand::I(b)) => {
                let out = a;
                match op {
                    BinOp::Add => asm.emit(Inst::Add {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Sub => asm.emit(Inst::Sub {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Mul => asm.emit(Inst::Mul {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Div => asm.emit(Inst::Div {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Rem => asm.emit(Inst::Rem {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::And => asm.emit(Inst::And {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Or => asm.emit(Inst::Or {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Xor => asm.emit(Inst::Xor {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Shl => asm.emit(Inst::Shl {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Shr => asm.emit(Inst::Shr {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Sra => asm.emit(Inst::Sra {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Lt => asm.emit(Inst::Slt {
                        rd: out,
                        rs1: a,
                        rs2: b,
                    }),
                    BinOp::Gt => asm.emit(Inst::Slt {
                        rd: out,
                        rs1: b,
                        rs2: a,
                    }),
                    BinOp::Le => {
                        asm.emit(Inst::Slt {
                            rd: out,
                            rs1: b,
                            rs2: a,
                        });
                        asm.emit(Inst::XorI {
                            rd: out,
                            rs1: out,
                            imm: 1,
                        });
                    }
                    BinOp::Ge => {
                        asm.emit(Inst::Slt {
                            rd: out,
                            rs1: a,
                            rs2: b,
                        });
                        asm.emit(Inst::XorI {
                            rd: out,
                            rs1: out,
                            imm: 1,
                        });
                    }
                    BinOp::Eq => {
                        asm.emit(Inst::Xor {
                            rd: out,
                            rs1: a,
                            rs2: b,
                        });
                        let one = self.alloc_i()?;
                        asm.emit(Inst::Li { rd: one, imm: 1 });
                        asm.emit(Inst::Sltu {
                            rd: out,
                            rs1: out,
                            rs2: one,
                        });
                        self.ipool.push(one);
                    }
                    BinOp::Ne => {
                        asm.emit(Inst::Xor {
                            rd: out,
                            rs1: a,
                            rs2: b,
                        });
                        let z = self.alloc_i()?;
                        asm.emit(Inst::Li { rd: z, imm: 0 });
                        asm.emit(Inst::Sltu {
                            rd: out,
                            rs1: z,
                            rs2: out,
                        });
                        self.ipool.push(z);
                    }
                    BinOp::Min | BinOp::Max => unreachable!("checked float-only op"),
                }
                self.ipool.push(b);
                Operand::I(out)
            }
            (Operand::F(a), Operand::F(b)) => {
                match op {
                    BinOp::Add => asm.emit(Inst::FAdd {
                        fd: a,
                        fs1: a,
                        fs2: b,
                    }),
                    BinOp::Sub => asm.emit(Inst::FSub {
                        fd: a,
                        fs1: a,
                        fs2: b,
                    }),
                    BinOp::Mul => asm.emit(Inst::FMul {
                        fd: a,
                        fs1: a,
                        fs2: b,
                    }),
                    BinOp::Div => asm.emit(Inst::FDiv {
                        fd: a,
                        fs1: a,
                        fs2: b,
                    }),
                    BinOp::Min => asm.emit(Inst::FMin {
                        fd: a,
                        fs1: a,
                        fs2: b,
                    }),
                    BinOp::Max => asm.emit(Inst::FMax {
                        fd: a,
                        fs1: a,
                        fs2: b,
                    }),
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        let out = self.alloc_i()?;
                        match op {
                            BinOp::Lt => asm.emit(Inst::FLt {
                                rd: out,
                                fs1: a,
                                fs2: b,
                            }),
                            BinOp::Gt => asm.emit(Inst::FLt {
                                rd: out,
                                fs1: b,
                                fs2: a,
                            }),
                            BinOp::Le => asm.emit(Inst::FLe {
                                rd: out,
                                fs1: a,
                                fs2: b,
                            }),
                            BinOp::Ge => asm.emit(Inst::FLe {
                                rd: out,
                                fs1: b,
                                fs2: a,
                            }),
                            BinOp::Eq => asm.emit(Inst::FEq {
                                rd: out,
                                fs1: a,
                                fs2: b,
                            }),
                            BinOp::Ne => {
                                asm.emit(Inst::FEq {
                                    rd: out,
                                    fs1: a,
                                    fs2: b,
                                });
                                asm.emit(Inst::XorI {
                                    rd: out,
                                    rs1: out,
                                    imm: 1,
                                });
                            }
                            _ => unreachable!(),
                        }
                        self.fpool.push(a);
                        self.fpool.push(b);
                        return Ok(Operand::I(out));
                    }
                    _ => unreachable!("checked int-only op"),
                }
                self.fpool.push(b);
                Operand::F(a)
            }
            _ => unreachable!("checked operand types match"),
        })
    }
}

/// Materialise a 64-bit constant (splits into `Li` + `OrHi` when it does not
/// fit a sign-extended 32-bit immediate).
fn emit_const_i64(v: i64, rd: Reg, asm: &mut Asm) {
    if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
        asm.emit(Inst::Li { rd, imm: v as i32 });
    } else {
        asm.emit(Inst::Li {
            rd,
            imm: v as u32 as i32,
        });
        asm.emit(Inst::OrHi {
            rd,
            imm: (v >> 32) as i32,
        });
    }
}
