//! RIFF/WAVE (16-bit PCM) encoding and decoding, plus deterministic
//! synthetic input generation.
//!
//! The paper's input is real audio from Fraunhofer IDMT, which we do not
//! have; the access *patterns* of the kernels do not depend on sample
//! values, so a deterministic mixture of sinusoids with pseudo-random
//! phases stands in (documented as a substitution in `DESIGN.md`).

use tq_isa::prng::Rng;

/// Build a canonical 44-byte PCM WAVE header.
pub fn wav_header(n_channels: u16, sample_rate: u32, n_samples_per_channel: u32) -> [u8; 44] {
    let data_bytes = n_samples_per_channel * n_channels as u32 * 2;
    let byte_rate = sample_rate * n_channels as u32 * 2;
    let block_align = n_channels * 2;
    let mut h = [0u8; 44];
    h[0..4].copy_from_slice(b"RIFF");
    h[4..8].copy_from_slice(&(36 + data_bytes).to_le_bytes());
    h[8..12].copy_from_slice(b"WAVE");
    h[12..16].copy_from_slice(b"fmt ");
    h[16..20].copy_from_slice(&16u32.to_le_bytes());
    h[20..22].copy_from_slice(&1u16.to_le_bytes()); // PCM
    h[22..24].copy_from_slice(&n_channels.to_le_bytes());
    h[24..28].copy_from_slice(&sample_rate.to_le_bytes());
    h[28..32].copy_from_slice(&byte_rate.to_le_bytes());
    h[32..34].copy_from_slice(&block_align.to_le_bytes());
    h[34..36].copy_from_slice(&16u16.to_le_bytes());
    h[36..40].copy_from_slice(b"data");
    h[40..44].copy_from_slice(&data_bytes.to_le_bytes());
    h
}

/// Encode interleaved i16 samples as a WAVE file.
pub fn encode_wav(n_channels: u16, sample_rate: u32, samples: &[i16]) -> Vec<u8> {
    assert_eq!(samples.len() % n_channels as usize, 0, "whole frames only");
    let per_channel = (samples.len() / n_channels as usize) as u32;
    let mut out = Vec::with_capacity(44 + samples.len() * 2);
    out.extend_from_slice(&wav_header(n_channels, sample_rate, per_channel));
    for s in samples {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// A decoded WAVE file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WavData {
    /// Channel count.
    pub n_channels: u16,
    /// Sample rate.
    pub sample_rate: u32,
    /// Interleaved samples.
    pub samples: Vec<i16>,
}

/// Decode a canonical PCM WAVE file (as produced by [`encode_wav`] or the
/// simulated application).
pub fn decode_wav(bytes: &[u8]) -> Result<WavData, String> {
    if bytes.len() < 44 {
        return Err("file shorter than a WAVE header".into());
    }
    if &bytes[0..4] != b"RIFF" || &bytes[8..12] != b"WAVE" || &bytes[12..16] != b"fmt " {
        return Err("not a canonical RIFF/WAVE file".into());
    }
    let format = u16::from_le_bytes(bytes[20..22].try_into().unwrap());
    if format != 1 {
        return Err(format!("not PCM (format tag {format})"));
    }
    let n_channels = u16::from_le_bytes(bytes[22..24].try_into().unwrap());
    let sample_rate = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    let bits = u16::from_le_bytes(bytes[34..36].try_into().unwrap());
    if bits != 16 {
        return Err(format!("only 16-bit PCM supported, found {bits}"));
    }
    if &bytes[36..40] != b"data" {
        return Err("missing data chunk".into());
    }
    let data_bytes = u32::from_le_bytes(bytes[40..44].try_into().unwrap()) as usize;
    let avail = bytes.len() - 44;
    let n = data_bytes.min(avail) / 2;
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        samples.push(i16::from_le_bytes(
            bytes[44 + 2 * i..46 + 2 * i].try_into().unwrap(),
        ));
    }
    Ok(WavData {
        n_channels,
        sample_rate,
        samples,
    })
}

/// Deterministic synthetic source signal: a mixture of sinusoids with
/// pseudo-random frequencies/phases plus low-level noise, in i16 PCM.
pub fn synth_source(n_samples: u32, sample_rate: u32, seed: u64) -> Vec<i16> {
    let mut rng = Rng::new(seed);
    let partials: Vec<(f64, f64, f64)> = (0..6)
        .map(|_| {
            (
                rng.f64_in(80.0, 2000.0),               // frequency
                rng.f64_in(0.0, std::f64::consts::TAU), // phase
                rng.f64_in(0.05, 0.2),                  // amplitude
            )
        })
        .collect();
    (0..n_samples)
        .map(|i| {
            let t = i as f64 / sample_rate as f64;
            let mut x = 0.0;
            for &(f, p, a) in &partials {
                x += a * (std::f64::consts::TAU * f * t + p).sin();
            }
            x += rng.f64_in(-0.01, 0.01);
            (x.clamp(-1.0, 1.0) * 30000.0) as i16
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let samples: Vec<i16> = vec![0, 100, -100, i16::MAX, i16::MIN, 7, -7, 42];
        let bytes = encode_wav(2, 44100, &samples);
        let w = decode_wav(&bytes).unwrap();
        assert_eq!(w.n_channels, 2);
        assert_eq!(w.sample_rate, 44100);
        assert_eq!(w.samples, samples);
    }

    #[test]
    fn header_fields() {
        let h = wav_header(4, 16000, 100);
        assert_eq!(&h[0..4], b"RIFF");
        assert_eq!(
            u32::from_le_bytes(h[40..44].try_into().unwrap()),
            100 * 4 * 2
        );
        assert_eq!(u16::from_le_bytes(h[22..24].try_into().unwrap()), 4);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_wav(b"nope").is_err());
        assert!(decode_wav(&[0u8; 44]).is_err());
        let mut bad = encode_wav(1, 8000, &[0; 4]);
        bad[20] = 3; // not PCM
        assert!(decode_wav(&bad).is_err());
    }

    #[test]
    fn synth_is_deterministic_and_bounded() {
        let a = synth_source(256, 8000, 7);
        let b = synth_source(256, 8000, 7);
        let c = synth_source(256, 8000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().any(|&s| s != 0), "signal is non-trivial");
    }
}
