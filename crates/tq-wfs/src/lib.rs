//! # tq-wfs — the *hArtes wfs* case-study application, rebuilt
//!
//! The paper evaluates tQUAD on the *hArtes wfs* wave-field-synthesis audio
//! application (Fraunhofer IDMT), which is not publicly available. This
//! crate rebuilds it from the paper's structural description: all 21
//! kernels of Tables I–IV, compiled through [`tq_kernelc`] onto the VM,
//! running in the paper's *off-line mode* (input and output are WAVE files
//! in the simulated file system).
//!
//! * [`WfsConfig`] — scaled workload presets (`tiny`, `small`,
//!   `paper_scaled`);
//! * [`build_module`] — the kernels, in the kernel DSL;
//! * [`WfsApp`] — compile + stage + run driver;
//! * [`RefWfs`] — a native Rust mirror of the pipeline; VM output is
//!   byte-compared against it;
//! * [`wav`] — RIFF/WAVE encode/decode and synthetic input generation.

pub mod app;
pub mod config;
pub mod kernels;
pub mod reference;
pub mod wav;

pub use app::WfsApp;
pub use config::WfsConfig;
pub use kernels::{build_module, cfg_idx, INPUT_WAV, KERNEL_NAMES, OUTPUT_WAV};
pub use reference::RefWfs;
