//! Application driver: compile the wfs module, stage input audio, run on
//! the VM (optionally under tools), and read results back.

use crate::config::WfsConfig;
use crate::kernels::{build_module, INPUT_WAV, OUTPUT_WAV};
use crate::reference::RefWfs;
use crate::wav::{encode_wav, synth_source};
use tq_kernelc::{compile, Compiled};
use tq_vm::{RunExit, Vm, VmError};

/// A ready-to-run wfs application instance.
pub struct WfsApp {
    /// The workload configuration.
    pub config: WfsConfig,
    /// Compiled program + global layout.
    pub compiled: Compiled,
    /// The synthetic input WAVE file staged as `input.wav`.
    pub input_wav: Vec<u8>,
}

impl WfsApp {
    /// Compile the application for `config` with a deterministic synthetic
    /// input (seed fixed at 42).
    pub fn build(config: WfsConfig) -> Self {
        Self::build_seeded(config, 42)
    }

    /// Compile with a chosen input seed.
    pub fn build_seeded(config: WfsConfig, seed: u64) -> Self {
        config.validate().expect("valid config");
        let module = build_module(&config);
        let compiled = compile(&module).expect("wfs module compiles");
        let input = synth_source(config.n_samples(), config.sample_rate, seed);
        let input_wav = encode_wav(1, config.sample_rate, &input);
        WfsApp {
            config,
            compiled,
            input_wav,
        }
    }

    /// A fresh VM with the program loaded and the input staged. Attach
    /// tools before calling [`Vm::run`].
    pub fn make_vm(&self) -> Vm {
        let mut vm = Vm::new(self.compiled.program.clone()).expect("program loads");
        vm.fs_mut().add_file(INPUT_WAV, self.input_wav.clone());
        vm
    }

    /// Run without tools; returns the VM (for inspection) and the exit.
    pub fn run_bare(&self) -> Result<(Vm, RunExit), VmError> {
        let mut vm = self.make_vm();
        let exit = vm.run(None)?;
        Ok((vm, exit))
    }

    /// The output WAVE bytes from a finished VM.
    pub fn output_wav<'v>(&self, vm: &'v Vm) -> Option<&'v [u8]> {
        vm.fs().file(OUTPUT_WAV)
    }

    /// Run the native reference pipeline on the same input.
    pub fn reference_output(&self) -> Vec<u8> {
        RefWfs::new(self.config).run(&self.input_wav)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_stages() {
        let app = WfsApp::build(WfsConfig::tiny());
        let vm = app.make_vm();
        assert!(vm.fs().file(INPUT_WAV).is_some());
        assert_eq!(app.input_wav.len() as u32, 44 + app.config.n_samples() * 2);
    }

    #[test]
    fn different_seeds_different_input() {
        let a = WfsApp::build_seeded(WfsConfig::tiny(), 1);
        let b = WfsApp::build_seeded(WfsConfig::tiny(), 2);
        assert_ne!(a.input_wav, b.input_wav);
    }
}
