//! The *hArtes wfs* application, kernel by kernel.
//!
//! Every kernel named in the paper's Tables I–IV is implemented, with the
//! structure the paper describes or implies:
//!
//! * `fft1d` — in-place Danielson–Lanczos FFT ("no additional memory
//!   allocation"), with `perm` performing the bit-reversal permutation and
//!   calling `bitrev` once per element (the paper's call counts:
//!   984 `fft1d`, 984 `perm`, 984 × N `bitrev`);
//! * `Filter_process` — frequency-domain filtering calling `cmult` and
//!   `cadd` once per bin per chunk (493 × 2048 = 1 009 664 in the paper);
//! * `AudioIo_setFrames` — copies interleaved audio into the big frame
//!   buffer, every write to a *fresh* address (the paper's critical
//!   observation: bytes ≈ UnMA);
//! * `wav_store` — converts the whole frame buffer to PCM through a small
//!   reused staging buffer (huge IN UnMA, tiny OUT UnMA), called once,
//!   active alone in the second half of the run;
//! * `zeroRealVec`/`zeroCplxVec` — buffer-zeroing kernels whose traffic is
//!   almost entirely loop bookkeeping (stack) versus one global store per
//!   element — the > 100× include/exclude-stack ratios of Table II;
//! * the wave-propagation kernels (`PrimarySource_deriveTP`,
//!   `calculateGainPQ`, `vsmult2d`) with ~7 % of speaker/point pairs culled
//!   (matching the 6994/7552 call-count ratio);
//! * runtime-support routines (`lib_round`, `lib_memcpy4`) live in the
//!   `libsim` image, exercising tQUAD's library-exclusion option.

use crate::config::WfsConfig;
use crate::wav::wav_header;
use std::f64::consts::PI;
use tq_isa::HostFn;
use tq_kernelc::dsl::*;
use tq_kernelc::{ElemTy, Function, GlobalInit, Module, Ty};

/// Config-array indices shared between the DSL code, the reference
/// implementation and the staging code.
pub mod cfg_idx {
    /// Number of speakers.
    pub const S: i64 = 0;
    /// FFT size.
    pub const N: i64 = 1;
    /// Chunk length.
    pub const C: i64 = 2;
    /// Number of chunks.
    pub const K: i64 = 3;
    /// Trajectory points.
    pub const P: i64 = 4;
    /// Sample rate.
    pub const RATE: i64 = 5;
    /// Maximum delay.
    pub const MAXD: i64 = 6;
    /// Total samples.
    pub const NSAMP: i64 = 7;
    /// log₂(FFT size) — computed by `ldint`.
    pub const LOG2N: i64 = 8;
    /// Delay-line ring length — computed by `ldint`.
    pub const DLEN: i64 = 9;
}

/// Input file name inside the simulated FS.
pub const INPUT_WAV: &str = "input.wav";
/// Output file name inside the simulated FS.
pub const OUTPUT_WAV: &str = "output.wav";

/// LCG multiplier used for output dithering (Knuth's MMIX constants).
pub const LCG_MUL: i64 = 6364136223846793005;
/// LCG increment.
pub const LCG_INC: i64 = 1442695040888963407;
/// Dither amplitude.
pub const DITHER_SCALE: f64 = 3.0e-5;
/// Initial LCG seed.
pub const LCG_SEED: i64 = 0x243F6A8885A308D3u64 as i64;

/// The 21 kernel names of the paper, in Table II order.
pub const KERNEL_NAMES: [&str; 21] = [
    "AudioIo_getFrames",
    "AudioIo_setFrames",
    "DelayLine_processChunk",
    "Filter_process",
    "Filter_process_pre_",
    "PrimarySource_deriveTP",
    "bitrev",
    "c2r",
    "cadd",
    "calculateGainPQ",
    "cmult",
    "fft1d",
    "ffw",
    "ldint",
    "perm",
    "r2c",
    "vsmult2d",
    "wav_load",
    "wav_store",
    "zeroCplxVec",
    "zeroRealVec",
];

fn cfg(i: i64) -> tq_kernelc::Expr {
    ldi(ga("cfg"), ci(i))
}

/// Build the complete application module for a configuration.
pub fn build_module(config: &WfsConfig) -> Module {
    config.validate().expect("valid config");
    let mut m = Module::new("hartes_wfs");

    let n = config.fft_size as u64;
    let s = config.n_speakers as u64;
    let c = config.chunk_len as u64;
    let p = config.n_points as u64;
    let nsamp = config.n_samples() as u64;
    let dlen = config.dline_len() as u64;

    // ---- globals ----
    m.global(
        "cfg",
        ElemTy::I64,
        16,
        GlobalInit::I64s(vec![
            config.n_speakers as i64,
            config.fft_size as i64,
            config.chunk_len as i64,
            config.n_chunks as i64,
            config.n_points as i64,
            config.sample_rate as i64,
            config.max_delay as i64,
            config.n_samples() as i64,
            0, // log2n: computed by ldint
            0, // dline_len: computed by ldint
        ]),
    );
    m.global(
        "path_in",
        ElemTy::U8,
        INPUT_WAV.len() as u64,
        GlobalInit::Bytes(INPUT_WAV.into()),
    );
    m.global(
        "path_out",
        ElemTy::U8,
        OUTPUT_WAV.len() as u64,
        GlobalInit::Bytes(OUTPUT_WAV.into()),
    );
    m.global("hdr", ElemTy::U8, 44, GlobalInit::Zero);
    // Output header is statically known for a fixed config (documented
    // simplification: the real app composes it field by field).
    m.global(
        "outhdr",
        ElemTy::U8,
        44,
        GlobalInit::Bytes(
            wav_header(
                config.n_speakers as u16,
                config.sample_rate,
                config.n_samples(),
            )
            .to_vec(),
        ),
    );
    m.global("stage", ElemTy::U8, 4096, GlobalInit::Zero);
    m.global("src", ElemTy::F32, nsamp, GlobalInit::Zero);
    m.global("inbuf", ElemTy::F32, n, GlobalInit::Zero);
    m.global("fft_re", ElemTy::F64, n, GlobalInit::Zero);
    m.global("fft_im", ElemTy::F64, n, GlobalInit::Zero);
    m.global("tmp_re", ElemTy::F64, n, GlobalInit::Zero);
    m.global("tmp_im", ElemTy::F64, n, GlobalInit::Zero);
    m.global("carry_re", ElemTy::F64, n, GlobalInit::Zero);
    m.global("carry_im", ElemTy::F64, n, GlobalInit::Zero);
    m.global("coef1_re", ElemTy::F64, n, GlobalInit::Zero);
    m.global("coef1_im", ElemTy::F64, n, GlobalInit::Zero);
    m.global("coef2_re", ElemTy::F64, n, GlobalInit::Zero);
    m.global("coef2_im", ElemTy::F64, n, GlobalInit::Zero);
    m.global("procbuf", ElemTy::F32, c, GlobalInit::Zero);
    m.global("dline", ElemTy::F32, s * dlen, GlobalInit::Zero);
    m.global("dpos", ElemTy::I64, 1, GlobalInit::Zero);
    // Overlap-add output accumulators: two chunk-lengths per speaker, all
    // zeroed each chunk by `zeroRealVec` (the zeroing volume behind the
    // kernel's Table I share).
    m.global("mix", ElemTy::F64, s * c * 2, GlobalInit::Zero);
    // Frame store in planar (per-speaker) layout, f64 samples. Written
    // exactly once per location by `AudioIo_setFrames`'s block copies.
    m.global("frames", ElemTy::F64, nsamp * s, GlobalInit::Zero);
    m.global("gains", ElemTy::F64, p * s, GlobalInit::Zero);
    m.global("delays", ElemTy::I64, p * s, GlobalInit::Zero);
    m.global("srcpos", ElemTy::F64, p * 2, GlobalInit::Zero);
    m.global("dirvec", ElemTy::F64, s * 2, GlobalInit::Zero);
    m.global(
        "spkpos",
        ElemTy::F64,
        s * 2,
        GlobalInit::F64s(speaker_positions(config.n_speakers)),
    );
    m.global("lcg", ElemTy::I64, 1, GlobalInit::I64s(vec![LCG_SEED]));
    m.global("errfb", ElemTy::F64, 1, GlobalInit::Zero);
    m.global("meter", ElemTy::F64, 1, GlobalInit::Zero);
    m.global("rms", ElemTy::F64, 1, GlobalInit::Zero);

    // ---- library routines (the `libsim` image) ----
    m.func(
        Function::new("lib_round")
            .param("x", Ty::F64)
            .returns(Ty::I64)
            .in_library()
            .body(vec![
                if_(gt(v("x"), cf(32767.0)), vec![ret(ci(32767))]),
                if_(lt(v("x"), cf(-32768.0)), vec![ret(ci(-32768))]),
                if_else(
                    ge(v("x"), cf(0.0)),
                    vec![ret(f2i(add(v("x"), cf(0.5))))],
                    vec![ret(f2i(sub(v("x"), cf(0.5))))],
                ),
            ]),
    );
    m.func(
        Function::new("lib_memcpy4")
            .param("dst", Ty::I64)
            .param("srcp", Ty::I64)
            .param("n", Ty::I64)
            .in_library()
            .body(vec![for_(
                "i",
                ci(0),
                v("n"),
                vec![store(
                    v("dst"),
                    ElemTy::F32,
                    v("i"),
                    load(v("srcp"), ElemTy::F32, v("i")),
                )],
            )]),
    );

    // ---- application kernels ----
    m.func(Function::new("ldint").body(vec![
        leti("n", cfg(cfg_idx::N)),
        leti("l", ci(0)),
        while_(
            gt(v("n"), ci(1)),
            vec![set("l", add(v("l"), ci(1))), set("n", shr(v("n"), ci(1)))],
        ),
        sti(ga("cfg"), ci(cfg_idx::LOG2N), v("l")),
        sti(
            ga("cfg"),
            ci(cfg_idx::DLEN),
            add(cfg(cfg_idx::MAXD), cfg(cfg_idx::C)),
        ),
    ]));

    m.func(
        Function::new("ffw")
            .param("dre", Ty::I64)
            .param("dim", Ty::I64)
            .param("scale", Ty::F64)
            .body(vec![
                leti("n", cfg(cfg_idx::N)),
                letf("fn_", i2f(v("n"))),
                for_(
                    "k",
                    ci(0),
                    v("n"),
                    vec![
                        letf(
                            "h",
                            mul(
                                add(
                                    cf(0.5),
                                    mul(cf(0.5), cos(div(mul(cf(PI), i2f(v("k"))), v("fn_")))),
                                ),
                                v("scale"),
                            ),
                        ),
                        stf(v("dre"), v("k"), v("h")),
                        stf(v("dim"), v("k"), cf(0.0)),
                    ],
                ),
                // Iterative refinement passes — the real `ffw` repeatedly
                // rewrites the coefficient arrays, giving it the large
                // OUT-to-UnMA ratio of Table II.
                for_(
                    "it",
                    ci(0),
                    ci(4),
                    vec![for_(
                        "k",
                        ci(1),
                        sub(v("n"), ci(1)),
                        vec![stf(
                            v("dre"),
                            v("k"),
                            mul(
                                add(
                                    add(ldf(v("dre"), sub(v("k"), ci(1))), ldf(v("dre"), v("k"))),
                                    ldf(v("dre"), add(v("k"), ci(1))),
                                ),
                                cf(1.0 / 3.0),
                            ),
                        )],
                    )],
                ),
            ]),
    );

    m.func(Function::new("wav_load").body(vec![
        leti("fd", ci(0)),
        host_ret(
            "fd",
            HostFn::FsOpen,
            vec![ga("path_in"), ci(INPUT_WAV.len() as i64), ci(0)],
        ),
        leti("got", ci(0)),
        host_ret("got", HostFn::FsRead, vec![v("fd"), ga("hdr"), ci(44)]),
        // Parse the data-chunk size from the header bytes.
        leti(
            "db",
            bor(
                bor(
                    load(ga("hdr"), ElemTy::U8, ci(40)),
                    shl(load(ga("hdr"), ElemTy::U8, ci(41)), ci(8)),
                ),
                bor(
                    shl(load(ga("hdr"), ElemTy::U8, ci(42)), ci(16)),
                    shl(load(ga("hdr"), ElemTy::U8, ci(43)), ci(24)),
                ),
            ),
        ),
        leti("ns", div(v("db"), ci(2))),
        leti("cap", cfg(cfg_idx::NSAMP)),
        if_(gt(v("ns"), v("cap")), vec![set("ns", v("cap"))]),
        leti("pos", ci(0)),
        while_(
            lt(v("pos"), v("ns")),
            vec![
                leti("todo", sub(v("ns"), v("pos"))),
                if_(gt(v("todo"), ci(2048)), vec![set("todo", ci(2048))]),
                host_ret(
                    "got",
                    HostFn::FsRead,
                    vec![v("fd"), ga("stage"), mul(v("todo"), ci(2))],
                ),
                for_(
                    "i",
                    ci(0),
                    v("todo"),
                    vec![store(
                        ga("src"),
                        ElemTy::F32,
                        add(v("pos"), v("i")),
                        mul(
                            i2f(load(ga("stage"), ElemTy::I16, v("i"))),
                            cf(1.0 / 32768.0),
                        ),
                    )],
                ),
                set("pos", add(v("pos"), v("todo"))),
            ],
        ),
        // Peak-normalisation pass over the loaded signal (the off-line
        // loader conditions the source before synthesis).
        letf("peak", cf(1.0e-9)),
        for_(
            "i",
            ci(0),
            v("ns"),
            vec![
                letf("a", fabs(load(ga("src"), ElemTy::F32, v("i")))),
                if_(gt(v("a"), v("peak")), vec![set("peak", v("a"))]),
            ],
        ),
        letf("ng", div(cf(0.9), v("peak"))),
        for_(
            "i",
            ci(0),
            v("ns"),
            vec![store(
                ga("src"),
                ElemTy::F32,
                v("i"),
                mul(load(ga("src"), ElemTy::F32, v("i")), v("ng")),
            )],
        ),
        host(HostFn::FsClose, vec![v("fd")]),
    ]));

    m.func(
        Function::new("PrimarySource_deriveTP")
            .param("p", Ty::I64)
            .body(vec![
                letf("ang", mul(i2f(v("p")), cf(0.13))),
                stf(
                    ga("srcpos"),
                    mul(v("p"), ci(2)),
                    mul(cos(v("ang")), cf(3.0)),
                ),
                stf(
                    ga("srcpos"),
                    add(mul(v("p"), ci(2)), ci(1)),
                    add(mul(sin(v("ang")), cf(3.0)), cf(5.0)),
                ),
            ]),
    );

    m.func(
        Function::new("calculateGainPQ")
            .param("p", Ty::I64)
            .param("s", Ty::I64)
            .body(vec![
                leti("ns", cfg(cfg_idx::S)),
                letf(
                    "dx",
                    sub(
                        ldf(ga("srcpos"), mul(v("p"), ci(2))),
                        ldf(ga("spkpos"), mul(v("s"), ci(2))),
                    ),
                ),
                letf(
                    "dy",
                    sub(
                        ldf(ga("srcpos"), add(mul(v("p"), ci(2)), ci(1))),
                        ldf(ga("spkpos"), add(mul(v("s"), ci(2)), ci(1))),
                    ),
                ),
                letf(
                    "dist",
                    sqrt(add(mul(v("dx"), v("dx")), mul(v("dy"), v("dy")))),
                ),
                letf("g", div(cf(1.0), fmax(v("dist"), cf(0.3)))),
                stf(ga("gains"), add(mul(v("p"), v("ns")), v("s")), v("g")),
                leti(
                    "d",
                    f2i(div(mul(v("dist"), i2f(cfg(cfg_idx::RATE))), cf(340.0))),
                ),
                set("d", add(rem(v("d"), cfg(cfg_idx::MAXD)), ci(1))),
                sti(ga("delays"), add(mul(v("p"), v("ns")), v("s")), v("d")),
            ]),
    );

    m.func(
        Function::new("vsmult2d")
            .param("p", Ty::I64)
            .param("s", Ty::I64)
            .body(vec![
                leti("ns", cfg(cfg_idx::S)),
                letf("g", ldf(ga("gains"), add(mul(v("p"), v("ns")), v("s")))),
                letf(
                    "dx",
                    sub(
                        ldf(ga("spkpos"), mul(v("s"), ci(2))),
                        ldf(ga("srcpos"), mul(v("p"), ci(2))),
                    ),
                ),
                letf(
                    "dy",
                    sub(
                        ldf(ga("spkpos"), add(mul(v("s"), ci(2)), ci(1))),
                        ldf(ga("srcpos"), add(mul(v("p"), ci(2)), ci(1))),
                    ),
                ),
                stf(ga("dirvec"), mul(v("s"), ci(2)), mul(v("dx"), v("g"))),
                stf(
                    ga("dirvec"),
                    add(mul(v("s"), ci(2)), ci(1)),
                    mul(v("dy"), v("g")),
                ),
            ]),
    );

    m.func(
        Function::new("bitrev")
            .param("x", Ty::I64)
            .param("bits", Ty::I64)
            .returns(Ty::I64)
            .body(vec![
                leti("r", ci(0)),
                for_(
                    "b",
                    ci(0),
                    v("bits"),
                    vec![
                        set("r", bor(shl(v("r"), ci(1)), band(v("x"), ci(1)))),
                        set("x", shr(v("x"), ci(1))),
                    ],
                ),
                ret(v("r")),
            ]),
    );

    m.func(Function::new("perm").body(vec![
        leti("n", cfg(cfg_idx::N)),
        leti("l", cfg(cfg_idx::LOG2N)),
        for_(
            "i",
            ci(0),
            v("n"),
            vec![
                leti("j", ci(0)),
                call_ret("j", "bitrev", vec![v("i"), v("l")]),
                if_(
                    gt(v("j"), v("i")),
                    vec![
                        letf("t", ldf(ga("fft_re"), v("i"))),
                        stf(ga("fft_re"), v("i"), ldf(ga("fft_re"), v("j"))),
                        stf(ga("fft_re"), v("j"), v("t")),
                        letf("u", ldf(ga("fft_im"), v("i"))),
                        stf(ga("fft_im"), v("i"), ldf(ga("fft_im"), v("j"))),
                        stf(ga("fft_im"), v("j"), v("u")),
                    ],
                ),
            ],
        ),
    ]));

    m.func(Function::new("fft1d").param("dir", Ty::I64).body(vec![
        call("perm", vec![]),
        leti("n", cfg(cfg_idx::N)),
        leti("mmax", ci(1)),
        while_(
            lt(v("mmax"), v("n")),
            vec![
                leti("istep", mul(v("mmax"), ci(2))),
                letf("w0", div(mul(i2f(v("dir")), cf(PI)), i2f(v("mmax")))),
                for_(
                    "mm",
                    ci(0),
                    v("mmax"),
                    vec![
                        letf("theta", mul(v("w0"), i2f(v("mm")))),
                        letf("wr", cos(v("theta"))),
                        letf("wi", sin(v("theta"))),
                        leti("i", v("mm")),
                        while_(
                            lt(v("i"), v("n")),
                            vec![
                                leti("j", add(v("i"), v("mmax"))),
                                letf(
                                    "tr",
                                    sub(
                                        mul(v("wr"), ldf(ga("fft_re"), v("j"))),
                                        mul(v("wi"), ldf(ga("fft_im"), v("j"))),
                                    ),
                                ),
                                letf(
                                    "ti",
                                    add(
                                        mul(v("wr"), ldf(ga("fft_im"), v("j"))),
                                        mul(v("wi"), ldf(ga("fft_re"), v("j"))),
                                    ),
                                ),
                                stf(
                                    ga("fft_re"),
                                    v("j"),
                                    sub(ldf(ga("fft_re"), v("i")), v("tr")),
                                ),
                                stf(
                                    ga("fft_im"),
                                    v("j"),
                                    sub(ldf(ga("fft_im"), v("i")), v("ti")),
                                ),
                                stf(
                                    ga("fft_re"),
                                    v("i"),
                                    add(ldf(ga("fft_re"), v("i")), v("tr")),
                                ),
                                stf(
                                    ga("fft_im"),
                                    v("i"),
                                    add(ldf(ga("fft_im"), v("i")), v("ti")),
                                ),
                                set("i", add(v("i"), v("istep"))),
                            ],
                        ),
                    ],
                ),
                set("mmax", v("istep")),
            ],
        ),
        if_(
            lt(v("dir"), ci(0)),
            vec![
                letf("invn", div(cf(1.0), i2f(v("n")))),
                for_(
                    "k",
                    ci(0),
                    v("n"),
                    vec![
                        stf(
                            ga("fft_re"),
                            v("k"),
                            mul(ldf(ga("fft_re"), v("k")), v("invn")),
                        ),
                        stf(
                            ga("fft_im"),
                            v("k"),
                            mul(ldf(ga("fft_im"), v("k")), v("invn")),
                        ),
                    ],
                ),
            ],
        ),
    ]));

    m.func(
        Function::new("zeroRealVec")
            .param("ptr", Ty::I64)
            .param("n", Ty::I64)
            .body(vec![for_(
                "i",
                ci(0),
                v("n"),
                vec![stf(v("ptr"), v("i"), cf(0.0))],
            )]),
    );

    m.func(Function::new("zeroCplxVec").body(vec![
        leti("n", cfg(cfg_idx::N)),
        for_(
            "i",
            ci(0),
            v("n"),
            vec![
                stf(ga("fft_re"), v("i"), cf(0.0)),
                stf(ga("fft_im"), v("i"), cf(0.0)),
            ],
        ),
    ]));

    m.func(Function::new("r2c").body(vec![
        leti("c", cfg(cfg_idx::C)),
        for_(
            "i",
            ci(0),
            v("c"),
            vec![stf(
                ga("fft_re"),
                v("i"),
                load(ga("inbuf"), ElemTy::F32, v("i")),
            )],
        ),
    ]));

    m.func(Function::new("c2r").body(vec![
        leti("c", cfg(cfg_idx::C)),
        for_(
            "i",
            ci(0),
            v("c"),
            vec![store(
                ga("procbuf"),
                ElemTy::F32,
                v("i"),
                ldf(ga("fft_re"), v("i")),
            )],
        ),
    ]));

    m.func(Function::new("cmult").param("k", Ty::I64).body(vec![
        stf(
            ga("tmp_re"),
            v("k"),
            sub(
                mul(ldf(ga("fft_re"), v("k")), ldf(ga("coef1_re"), v("k"))),
                mul(ldf(ga("fft_im"), v("k")), ldf(ga("coef1_im"), v("k"))),
            ),
        ),
        stf(
            ga("tmp_im"),
            v("k"),
            add(
                mul(ldf(ga("fft_re"), v("k")), ldf(ga("coef1_im"), v("k"))),
                mul(ldf(ga("fft_im"), v("k")), ldf(ga("coef1_re"), v("k"))),
            ),
        ),
    ]));

    m.func(Function::new("cadd").param("k", Ty::I64).body(vec![
        stf(
            ga("fft_re"),
            v("k"),
            add(ldf(ga("tmp_re"), v("k")), ldf(ga("carry_re"), v("k"))),
        ),
        stf(
            ga("fft_im"),
            v("k"),
            add(ldf(ga("tmp_im"), v("k")), ldf(ga("carry_im"), v("k"))),
        ),
    ]));

    m.func(Function::new("Filter_process_pre_").body(vec![
        leti("n", cfg(cfg_idx::N)),
        for_(
            "k",
            ci(0),
            v("n"),
            vec![
                stf(
                    ga("carry_re"),
                    v("k"),
                    add(
                        mul(ldf(ga("carry_re"), v("k")), cf(0.5)),
                        mul(
                            mul(ldf(ga("fft_re"), v("k")), ldf(ga("coef2_re"), v("k"))),
                            cf(0.05),
                        ),
                    ),
                ),
                stf(
                    ga("carry_im"),
                    v("k"),
                    add(
                        mul(ldf(ga("carry_im"), v("k")), cf(0.5)),
                        mul(
                            mul(ldf(ga("fft_im"), v("k")), ldf(ga("coef2_re"), v("k"))),
                            cf(0.05),
                        ),
                    ),
                ),
            ],
        ),
    ]));

    m.func(Function::new("Filter_process").body(vec![
        call("Filter_process_pre_", vec![]),
        leti("n", cfg(cfg_idx::N)),
        for_(
            "k",
            ci(0),
            v("n"),
            vec![call("cmult", vec![v("k")]), call("cadd", vec![v("k")])],
        ),
    ]));

    m.func(
        Function::new("AudioIo_getFrames")
            .param("c", Ty::I64)
            .body(vec![
                leti("cl", cfg(cfg_idx::C)),
                call(
                    "lib_memcpy4",
                    vec![
                        ga("inbuf"),
                        add(ga("src"), mul(mul(v("c"), v("cl")), ci(4))),
                        v("cl"),
                    ],
                ),
            ]),
    );

    m.func(
        Function::new("DelayLine_processChunk")
            .param("c", Ty::I64)
            .body(vec![
                leti("ns", cfg(cfg_idx::S)),
                leti("cl", cfg(cfg_idx::C)),
                leti("dl", cfg(cfg_idx::DLEN)),
                leti("p", div(mul(v("c"), cfg(cfg_idx::P)), cfg(cfg_idx::K))),
                leti("dp", ldi(ga("dpos"), ci(0))),
                for_(
                    "s",
                    ci(0),
                    v("ns"),
                    vec![
                        call(
                            "zeroRealVec",
                            vec![
                                add(ga("mix"), mul(mul(v("s"), mul(v("cl"), ci(2))), ci(8))),
                                mul(v("cl"), ci(2)),
                            ],
                        ),
                        letf("g", ldf(ga("gains"), add(mul(v("p"), v("ns")), v("s")))),
                        leti("d", ldi(ga("delays"), add(mul(v("p"), v("ns")), v("s")))),
                        for_(
                            "i",
                            ci(0),
                            v("cl"),
                            vec![
                                leti("wpos", rem(add(v("dp"), v("i")), v("dl"))),
                                store(
                                    ga("dline"),
                                    ElemTy::F32,
                                    add(mul(v("s"), v("dl")), v("wpos")),
                                    load(ga("procbuf"), ElemTy::F32, v("i")),
                                ),
                                leti(
                                    "rpos",
                                    rem(
                                        add(sub(add(v("dp"), v("i")), v("d")), mul(v("dl"), ci(4))),
                                        v("dl"),
                                    ),
                                ),
                                stf(
                                    ga("mix"),
                                    add(mul(v("s"), mul(v("cl"), ci(2))), v("i")),
                                    add(
                                        ldf(
                                            ga("mix"),
                                            add(mul(v("s"), mul(v("cl"), ci(2))), v("i")),
                                        ),
                                        mul(
                                            load(
                                                ga("dline"),
                                                ElemTy::F32,
                                                add(mul(v("s"), v("dl")), v("rpos")),
                                            ),
                                            v("g"),
                                        ),
                                    ),
                                ),
                            ],
                        ),
                    ],
                ),
                sti(ga("dpos"), ci(0), rem(add(v("dp"), v("cl")), v("dl"))),
            ]),
    );

    // `AudioIo_setFrames` moves each speaker's freshly mixed chunk into the
    // frame store with a single block-copy instruction per speaker — the
    // `memcpy`/`rep movs` behaviour behind the paper's observation that
    // this kernel writes > 60 MB to entirely distinct addresses at > 50
    // bytes/instruction while barely registering in the gprof profile.
    m.func(
        Function::new("AudioIo_setFrames")
            .param("c", Ty::I64)
            .body(vec![
                leti("ns", cfg(cfg_idx::S)),
                leti("cl", cfg(cfg_idx::C)),
                leti("nsm", cfg(cfg_idx::NSAMP)),
                for_(
                    "s",
                    ci(0),
                    v("ns"),
                    vec![memcpy_(
                        add(
                            ga("frames"),
                            mul(add(mul(v("s"), v("nsm")), mul(v("c"), v("cl"))), ci(8)),
                        ),
                        add(ga("mix"), mul(mul(v("s"), mul(v("cl"), ci(2))), ci(8))),
                        mul(v("cl"), ci(8)),
                    )],
                ),
            ]),
    );

    m.func(Function::new("wav_store").body(vec![
        leti("fd", ci(0)),
        host_ret(
            "fd",
            HostFn::FsOpen,
            vec![ga("path_out"), ci(OUTPUT_WAV.len() as i64), ci(1)],
        ),
        host(HostFn::FsWrite, vec![v("fd"), ga("outhdr"), ci(44)]),
        leti("total", mul(cfg(cfg_idx::NSAMP), cfg(cfg_idx::S))),
        leti("pos", ci(0)),
        while_(
            lt(v("pos"), v("total")),
            vec![
                leti("todo", sub(v("total"), v("pos"))),
                if_(gt(v("todo"), ci(2048)), vec![set("todo", ci(2048))]),
                for_(
                    "i",
                    ci(0),
                    v("todo"),
                    vec![
                        // Interleave on the fly from the planar frame store:
                        // output sample index pos+i maps to (t = idx/S, s = idx%S).
                        leti("idx", add(v("pos"), v("i"))),
                        letf(
                            "x",
                            ldf(
                                ga("frames"),
                                add(
                                    mul(rem(v("idx"), cfg(cfg_idx::S)), cfg(cfg_idx::NSAMP)),
                                    div(v("idx"), cfg(cfg_idx::S)),
                                ),
                            ),
                        ),
                        // Triangular dither from two LCG draws.
                        leti("r", ldi(ga("lcg"), ci(0))),
                        set("r", add(mul(v("r"), ci(LCG_MUL)), ci(LCG_INC))),
                        letf("d1", i2f(band(shr(v("r"), ci(33)), ci(0xFFFF)))),
                        set("r", add(mul(v("r"), ci(LCG_MUL)), ci(LCG_INC))),
                        letf("d2", i2f(band(shr(v("r"), ci(33)), ci(0xFFFF)))),
                        sti(ga("lcg"), ci(0), v("r")),
                        letf(
                            "y",
                            add(
                                mul(v("x"), cf(32767.0)),
                                mul(sub(add(v("d1"), v("d2")), cf(65536.0)), cf(DITHER_SCALE)),
                            ),
                        ),
                        // First-order error-feedback noise shaping.
                        set("y", add(v("y"), mul(ldf(ga("errfb"), ci(0)), cf(0.25)))),
                        leti("q", ci(0)),
                        call_ret("q", "lib_round", vec![v("y")]),
                        stf(ga("errfb"), ci(0), sub(v("y"), i2f(v("q")))),
                        // Output peak + power meters.
                        letf("am", fabs(v("y"))),
                        if_(
                            gt(v("am"), ldf(ga("meter"), ci(0))),
                            vec![stf(ga("meter"), ci(0), v("am"))],
                        ),
                        stf(
                            ga("rms"),
                            ci(0),
                            add(ldf(ga("rms"), ci(0)), mul(v("y"), v("y"))),
                        ),
                        store(ga("stage"), ElemTy::I16, v("i"), v("q")),
                    ],
                ),
                host(
                    HostFn::FsWrite,
                    vec![v("fd"), ga("stage"), mul(v("todo"), ci(2))],
                ),
                set("pos", add(v("pos"), v("todo"))),
            ],
        ),
        host(HostFn::FsClose, vec![v("fd")]),
    ]));

    m.func(Function::new("main").body(vec![
        call("ldint", vec![]),
        call("ffw", vec![ga("coef1_re"), ga("coef1_im"), cf(1.0)]),
        call("ffw", vec![ga("coef2_re"), ga("coef2_im"), cf(0.3)]),
        call("wav_load", vec![]),
        // Wave-propagation phase: gains and delays for every trajectory
        // point × speaker, with ~7 % culled (out-of-aperture pairs).
        leti("np", cfg(cfg_idx::P)),
        leti("nsp", cfg(cfg_idx::S)),
        for_(
            "p",
            ci(0),
            v("np"),
            vec![
                call("PrimarySource_deriveTP", vec![v("p")]),
                for_(
                    "s",
                    ci(0),
                    v("nsp"),
                    vec![if_(
                        ne(rem(add(v("p"), v("s")), ci(13)), ci(0)),
                        vec![
                            call("calculateGainPQ", vec![v("p"), v("s")]),
                            call("vsmult2d", vec![v("p"), v("s")]),
                        ],
                    )],
                ),
            ],
        ),
        // Main WFS processing loop.
        leti("nk", cfg(cfg_idx::K)),
        for_(
            "c",
            ci(0),
            v("nk"),
            vec![
                call("AudioIo_getFrames", vec![v("c")]),
                call("zeroCplxVec", vec![]),
                call("r2c", vec![]),
                call("fft1d", vec![ci(1)]),
                call("Filter_process", vec![]),
                call("fft1d", vec![ci(-1)]),
                call("c2r", vec![]),
                call("DelayLine_processChunk", vec![v("c")]),
                call("AudioIo_setFrames", vec![v("c")]),
            ],
        ),
        // Wave-save phase.
        call("wav_store", vec![]),
    ]));

    m
}

/// Speaker line-array positions: `n` speakers spaced 0.5 m apart, centred
/// on the origin, at y = 0.
pub fn speaker_positions(n: u32) -> Vec<f64> {
    let mut out = Vec::with_capacity(n as usize * 2);
    for s in 0..n {
        out.push((s as f64 - n as f64 / 2.0) * 0.5);
        out.push(0.0);
    }
    out
}

/// Statement count sanity helper (used by tests).
pub fn kernel_count(m: &Module) -> usize {
    m.functions.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_kernelc::check;

    #[test]
    fn module_checks_for_all_presets() {
        for c in [
            WfsConfig::tiny(),
            WfsConfig::small(),
            WfsConfig::paper_scaled(),
        ] {
            let m = build_module(&c);
            check(&m).expect("wfs module type-checks");
        }
    }

    #[test]
    fn all_paper_kernels_present() {
        let m = build_module(&WfsConfig::tiny());
        for name in KERNEL_NAMES {
            assert!(m.function(name).is_some(), "kernel `{name}` missing");
        }
        assert!(m.function("main").is_some());
        assert!(m.function("lib_round").unwrap().library);
        assert!(m.function("lib_memcpy4").unwrap().library);
    }

    #[test]
    fn module_compiles() {
        let compiled = tq_kernelc::compile(&build_module(&WfsConfig::tiny())).unwrap();
        assert_eq!(compiled.program.images.len(), 2, "main + libsim");
        compiled.program.validate().unwrap();
    }

    #[test]
    fn speaker_positions_centred() {
        let p = speaker_positions(4);
        assert_eq!(p.len(), 8);
        assert_eq!(p[0], -1.0);
        assert_eq!(p[6], 0.5);
        let sum_x: f64 = p.iter().step_by(2).sum();
        assert!(sum_x.abs() < 1.1, "roughly centred");
    }

    /// The opt-level ablation reports a 0% fold on wfs — this pins down
    /// *why* at the IR level: the module is genuinely fold-free. Every
    /// dimension (`fft_size`, `n_speakers`, …) is pre-evaluated in Rust
    /// while building the AST and then read back at runtime through the
    /// `cfg` global (see [`cfg`]), so the constant-fold pass finds no
    /// constant subexpression, no `x+0`-style identity, no constant
    /// branch, and no constant-bound loop — zero rewrites of any kind,
    /// at every scale. The measured -O0 vs -O1 delta on wfs is therefore
    /// expected to be nil; imgproc (which folds a couple of constants)
    /// is the module that shows a non-trivial delta.
    ///
    /// The sibling assertion proves the *pass* still fires on this
    /// module's shape: materialising one config value as an AST constant
    /// immediately produces folds, so a future kernel change that does
    /// introduce foldable IR will show up in `FoldStats`, not vanish
    /// into an unchanged profile.
    #[test]
    fn wfs_is_genuinely_fold_free_at_the_ir_level() {
        for config in [
            WfsConfig::tiny(),
            WfsConfig::small(),
            WfsConfig::paper_scaled(),
        ] {
            let m = build_module(&config);
            let (folded, stats) = tq_kernelc::fold_module_with_stats(&m);
            assert_eq!(
                stats.total(),
                0,
                "wfs gained foldable IR — update the ablation docs: {stats:?}"
            );
            check(&folded).expect("folded module still checks");
        }

        // Control: the same pass on an almost-identical module with one
        // AST-level constant expression does fold. `n = 4 + 4` mirrors
        // what wfs would look like if config values were inlined.
        let mut m = build_module(&WfsConfig::tiny());
        use tq_kernelc::dsl::*;
        m.func(Function::new("fold_canary").body(vec![leti("n", add(ci(4), ci(4))), ret(v("n"))]));
        let (_, stats) = tq_kernelc::fold_module_with_stats(&m);
        assert_eq!(stats.consts_folded, 1, "pass fires on foldable IR");
    }
}
