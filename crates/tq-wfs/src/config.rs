//! Configuration of the wave-field-synthesis application.
//!
//! The paper's experiments use one primary wavefront source and 32
//! secondary sources (speakers), a 2048-point FFT, 493 processing chunks
//! and 236 trajectory points, for ~6.4 × 10⁹ executed instructions — too
//! slow for an interpreted reproduction to sweep. The presets scale the
//! workload down while preserving every structural ratio the evaluation
//! depends on (calls per chunk, per-speaker loops, FFT size as a power of
//! two, second-half `wav_store` dominance). `EXPERIMENTS.md` documents the
//! mapping.

/// Workload parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WfsConfig {
    /// Number of secondary sources (speakers). Paper: 32.
    pub n_speakers: u32,
    /// FFT length (power of two). Paper: 2048.
    pub fft_size: u32,
    /// Samples per processing chunk (≤ `fft_size`). Paper: 2048-point FFT
    /// over 1024-sample chunks.
    pub chunk_len: u32,
    /// Number of processing chunks. Paper: 493.
    pub n_chunks: u32,
    /// Trajectory points of the moving primary source. Paper: 236.
    pub n_points: u32,
    /// Sample rate in Hz (only affects delay computation).
    pub sample_rate: u32,
    /// Maximum delay-line depth in samples.
    pub max_delay: u32,
}

impl WfsConfig {
    /// Minimal configuration for unit tests (~0.5 M instructions).
    pub fn tiny() -> Self {
        WfsConfig {
            n_speakers: 4,
            fft_size: 32,
            chunk_len: 16,
            n_chunks: 6,
            n_points: 8,
            sample_rate: 8000,
            max_delay: 64,
        }
    }

    /// Small configuration for integration tests and examples
    /// (~10 M instructions).
    pub fn small() -> Self {
        WfsConfig {
            n_speakers: 8,
            fft_size: 128,
            chunk_len: 64,
            n_chunks: 24,
            n_points: 30,
            sample_rate: 16000,
            max_delay: 256,
        }
    }

    /// The benchmark configuration: the paper's workload scaled down
    /// (speakers kept at 32, trajectory points kept at 236 — the paper's
    /// exact counts; FFT 2048 → 512; chunks 493 → 123). ~2 × 10⁸
    /// instructions.
    pub fn paper_scaled() -> Self {
        WfsConfig {
            n_speakers: 32,
            fft_size: 512,
            chunk_len: 128,
            n_chunks: 123,
            n_points: 236,
            sample_rate: 44100,
            max_delay: 512,
        }
    }

    /// Total primary-source samples processed.
    pub fn n_samples(&self) -> u32 {
        self.n_chunks * self.chunk_len
    }

    /// log₂ of the FFT size.
    pub fn log2_fft(&self) -> u32 {
        self.fft_size.trailing_zeros()
    }

    /// Delay-line ring length per speaker.
    pub fn dline_len(&self) -> u32 {
        self.max_delay + self.chunk_len
    }

    /// Validate structural requirements.
    pub fn validate(&self) -> Result<(), String> {
        if !self.fft_size.is_power_of_two() || self.fft_size < 4 {
            return Err("fft_size must be a power of two ≥ 4".into());
        }
        if self.chunk_len == 0 || self.chunk_len > self.fft_size {
            return Err("chunk_len must be in 1..=fft_size".into());
        }
        if self.n_speakers == 0 || self.n_chunks == 0 || self.n_points == 0 {
            return Err("speakers, chunks and points must be positive".into());
        }
        if self.max_delay == 0 {
            return Err("max_delay must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for c in [
            WfsConfig::tiny(),
            WfsConfig::small(),
            WfsConfig::paper_scaled(),
        ] {
            c.validate().unwrap();
            assert_eq!(c.n_samples(), c.n_chunks * c.chunk_len);
            assert_eq!(1u32 << c.log2_fft(), c.fft_size);
        }
    }

    #[test]
    fn paper_scaled_keeps_speaker_count() {
        assert_eq!(
            WfsConfig::paper_scaled().n_speakers,
            32,
            "the paper uses 32 speakers"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = WfsConfig::tiny();
        c.fft_size = 48;
        assert!(c.validate().is_err());
        let mut c = WfsConfig::tiny();
        c.chunk_len = c.fft_size * 2;
        assert!(c.validate().is_err());
        let mut c = WfsConfig::tiny();
        c.n_speakers = 0;
        assert!(c.validate().is_err());
    }
}
