//! Native Rust reference implementation of the wfs pipeline.
//!
//! Mirrors the DSL kernels operation-for-operation (same expression
//! shapes, same `f32` narrowing points, same integer semantics), so the
//! output WAVE bytes of a VM run and of this reference must be identical.
//! Divergence means a bug in the kernel compiler, the VM, or the mirror —
//! the `wfs_differential` integration test enforces it.

use crate::config::WfsConfig;
use crate::kernels::{DITHER_SCALE, LCG_INC, LCG_MUL, LCG_SEED};
use crate::wav::wav_header;
use std::f64::consts::PI;

/// The reference pipeline state.
pub struct RefWfs {
    cfg: WfsConfig,
    log2n: u32,
    dlen: u32,
    src: Vec<f32>,
    inbuf: Vec<f32>,
    fft_re: Vec<f64>,
    fft_im: Vec<f64>,
    tmp_re: Vec<f64>,
    tmp_im: Vec<f64>,
    carry_re: Vec<f64>,
    carry_im: Vec<f64>,
    coef1_re: Vec<f64>,
    coef1_im: Vec<f64>,
    coef2_re: Vec<f64>,
    coef2_im: Vec<f64>,
    procbuf: Vec<f32>,
    dline: Vec<f32>,
    dpos: i64,
    mix: Vec<f64>,
    frames: Vec<f64>,
    gains: Vec<f64>,
    delays: Vec<i64>,
    srcpos: Vec<f64>,
    dirvec: Vec<f64>,
    spkpos: Vec<f64>,
    lcg: i64,
    errfb: f64,
    meter: f64,
    rms: f64,
}

impl RefWfs {
    /// Fresh pipeline for a configuration.
    pub fn new(cfg: WfsConfig) -> Self {
        cfg.validate().expect("valid config");
        let n = cfg.fft_size as usize;
        let s = cfg.n_speakers as usize;
        let c = cfg.chunk_len as usize;
        let p = cfg.n_points as usize;
        let nsamp = cfg.n_samples() as usize;
        let dlen = cfg.dline_len() as usize;
        RefWfs {
            cfg,
            log2n: 0,
            dlen: 0,
            src: vec![0.0; nsamp],
            inbuf: vec![0.0; n],
            fft_re: vec![0.0; n],
            fft_im: vec![0.0; n],
            tmp_re: vec![0.0; n],
            tmp_im: vec![0.0; n],
            carry_re: vec![0.0; n],
            carry_im: vec![0.0; n],
            coef1_re: vec![0.0; n],
            coef1_im: vec![0.0; n],
            coef2_re: vec![0.0; n],
            coef2_im: vec![0.0; n],
            procbuf: vec![0.0; c],
            dline: vec![0.0; s * dlen],
            dpos: 0,
            mix: vec![0.0; s * c * 2],
            frames: vec![0.0; nsamp * s],
            gains: vec![0.0; p * s],
            delays: vec![0; p * s],
            srcpos: vec![0.0; p * 2],
            dirvec: vec![0.0; s * 2],
            spkpos: crate::kernels::speaker_positions(cfg.n_speakers),
            lcg: LCG_SEED,
            errfb: 0.0,
            meter: 0.0,
            rms: 0.0,
        }
    }

    fn ldint(&mut self) {
        let mut n = self.cfg.fft_size as i64;
        let mut l = 0;
        while n > 1 {
            l += 1;
            n >>= 1;
        }
        self.log2n = l;
        self.dlen = self.cfg.max_delay + self.cfg.chunk_len;
    }

    fn ffw(which: &mut [f64], im: &mut [f64], n: usize, scale: f64) {
        let fnn = n as i64 as f64;
        for k in 0..n {
            let h = (0.5 + 0.5 * ((PI * k as f64) / fnn).cos()) * scale;
            which[k] = h;
            im[k] = 0.0;
        }
        for _it in 0..4 {
            for k in 1..n - 1 {
                which[k] = ((which[k - 1] + which[k]) + which[k + 1]) * (1.0 / 3.0);
            }
        }
    }

    fn wav_load(&mut self, file: &[u8]) {
        // Header parse mirrors the DSL byte assembly.
        let hdr = &file[..44.min(file.len())];
        let db = (hdr[40] as i64)
            | ((hdr[41] as i64) << 8)
            | ((hdr[42] as i64) << 16)
            | ((hdr[43] as i64) << 24);
        let mut ns = db / 2;
        let cap = self.cfg.n_samples() as i64;
        if ns > cap {
            ns = cap;
        }
        for i in 0..ns as usize {
            let lo = file[44 + 2 * i] as u16;
            let hi = file[45 + 2 * i] as u16;
            let s16 = i16::from_le_bytes([lo as u8, (hi & 0xFF) as u8]) as i64;
            self.src[i] = ((s16 as f64) * (1.0 / 32768.0)) as f32;
        }
        // Peak normalisation, mirroring the kernel.
        let mut peak = 1.0e-9f64;
        for i in 0..ns as usize {
            let a = (self.src[i] as f64).abs();
            if a > peak {
                peak = a;
            }
        }
        let ng = 0.9 / peak;
        for i in 0..ns as usize {
            self.src[i] = ((self.src[i] as f64) * ng) as f32;
        }
    }

    fn derive_tp(&mut self, p: usize) {
        let ang = p as f64 * 0.13;
        self.srcpos[p * 2] = ang.cos() * 3.0;
        self.srcpos[p * 2 + 1] = ang.sin() * 3.0 + 5.0;
    }

    fn calculate_gain_pq(&mut self, p: usize, s: usize) {
        let ns = self.cfg.n_speakers as usize;
        let dx = self.srcpos[p * 2] - self.spkpos[s * 2];
        let dy = self.srcpos[p * 2 + 1] - self.spkpos[s * 2 + 1];
        let dist = (dx * dx + dy * dy).sqrt();
        let g = 1.0 / dist.max(0.3);
        self.gains[p * ns + s] = g;
        let d = ((dist * self.cfg.sample_rate as f64) / 340.0) as i64;
        self.delays[p * ns + s] = d % self.cfg.max_delay as i64 + 1;
    }

    fn vsmult2d(&mut self, p: usize, s: usize) {
        let ns = self.cfg.n_speakers as usize;
        let g = self.gains[p * ns + s];
        let dx = self.spkpos[s * 2] - self.srcpos[p * 2];
        let dy = self.spkpos[s * 2 + 1] - self.srcpos[p * 2 + 1];
        self.dirvec[s * 2] = dx * g;
        self.dirvec[s * 2 + 1] = dy * g;
    }

    fn bitrev(mut x: i64, bits: u32) -> i64 {
        let mut r = 0i64;
        for _ in 0..bits {
            r = (r << 1) | (x & 1);
            x >>= 1;
        }
        r
    }

    fn perm(&mut self) {
        let n = self.cfg.fft_size as usize;
        for i in 0..n {
            let j = Self::bitrev(i as i64, self.log2n) as usize;
            if j > i {
                self.fft_re.swap(i, j);
                self.fft_im.swap(i, j);
            }
        }
    }

    fn fft1d(&mut self, dir: i64) {
        self.perm();
        let n = self.cfg.fft_size as usize;
        let mut mmax = 1usize;
        while mmax < n {
            let istep = mmax * 2;
            let w0 = (dir as f64 * PI) / (mmax as i64 as f64);
            for m in 0..mmax {
                let theta = w0 * (m as i64 as f64);
                let wr = theta.cos();
                let wi = theta.sin();
                let mut i = m;
                while i < n {
                    let j = i + mmax;
                    let tr = wr * self.fft_re[j] - wi * self.fft_im[j];
                    let ti = wr * self.fft_im[j] + wi * self.fft_re[j];
                    self.fft_re[j] = self.fft_re[i] - tr;
                    self.fft_im[j] = self.fft_im[i] - ti;
                    self.fft_re[i] += tr;
                    self.fft_im[i] += ti;
                    i += istep;
                }
            }
            mmax = istep;
        }
        if dir < 0 {
            let invn = 1.0 / (n as i64 as f64);
            for k in 0..n {
                self.fft_re[k] *= invn;
                self.fft_im[k] *= invn;
            }
        }
    }

    fn filter_process_pre(&mut self) {
        let n = self.cfg.fft_size as usize;
        for k in 0..n {
            self.carry_re[k] = self.carry_re[k] * 0.5 + (self.fft_re[k] * self.coef2_re[k]) * 0.05;
            self.carry_im[k] = self.carry_im[k] * 0.5 + (self.fft_im[k] * self.coef2_re[k]) * 0.05;
        }
    }

    fn filter_process(&mut self) {
        self.filter_process_pre();
        let n = self.cfg.fft_size as usize;
        for k in 0..n {
            // cmult
            self.tmp_re[k] = self.fft_re[k] * self.coef1_re[k] - self.fft_im[k] * self.coef1_im[k];
            self.tmp_im[k] = self.fft_re[k] * self.coef1_im[k] + self.fft_im[k] * self.coef1_re[k];
            // cadd
            self.fft_re[k] = self.tmp_re[k] + self.carry_re[k];
            self.fft_im[k] = self.tmp_im[k] + self.carry_im[k];
        }
    }

    fn delay_line_process_chunk(&mut self, c: usize) {
        let ns = self.cfg.n_speakers as usize;
        let cl = self.cfg.chunk_len as usize;
        let dl = self.dlen as i64;
        let p = (c as i64 * self.cfg.n_points as i64 / self.cfg.n_chunks as i64) as usize;
        let dp = self.dpos;
        for s in 0..ns {
            for i in 0..cl * 2 {
                self.mix[s * cl * 2 + i] = 0.0;
            }
            let g = self.gains[p * ns + s];
            let d = self.delays[p * ns + s];
            for i in 0..cl {
                let wpos = (dp + i as i64) % dl;
                self.dline[s * dl as usize + wpos as usize] = self.procbuf[i];
                let rpos = ((dp + i as i64 - d) + dl * 4) % dl;
                let x = self.dline[s * dl as usize + rpos as usize] as f64;
                self.mix[s * cl * 2 + i] += x * g;
            }
        }
        self.dpos = (dp + cl as i64) % dl;
    }

    fn audio_io_set_frames(&mut self, c: usize) {
        // Mirrors the block copies: planar layout, f64 bit-copies.
        let ns = self.cfg.n_speakers as usize;
        let cl = self.cfg.chunk_len as usize;
        let nsm = self.cfg.n_samples() as usize;
        for s in 0..ns {
            for i in 0..cl {
                self.frames[s * nsm + c * cl + i] = self.mix[s * cl * 2 + i];
            }
        }
    }

    fn wav_store(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&wav_header(
            self.cfg.n_speakers as u16,
            self.cfg.sample_rate,
            self.cfg.n_samples(),
        ));
        let total = self.frames.len();
        let ns = self.cfg.n_speakers as usize;
        let nsm = self.cfg.n_samples() as usize;
        for i in 0..total {
            let x = self.frames[(i % ns) * nsm + i / ns];
            self.lcg = self.lcg.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
            let d1 = ((((self.lcg as u64) >> 33) as i64) & 0xFFFF) as f64;
            self.lcg = self.lcg.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
            let d2 = ((((self.lcg as u64) >> 33) as i64) & 0xFFFF) as f64;
            let mut y = x * 32767.0 + ((d1 + d2) - 65536.0) * DITHER_SCALE;
            y += self.errfb * 0.25;
            let q = Self::lib_round(y);
            self.errfb = y - q as f64;
            let am = y.abs();
            if am > self.meter {
                self.meter = am;
            }
            self.rms += y * y;
            out.extend_from_slice(&(q as i16).to_le_bytes());
        }
        out
    }

    fn lib_round(x: f64) -> i64 {
        if x > 32767.0 {
            return 32767;
        }
        if x < -32768.0 {
            return -32768;
        }
        if x >= 0.0 {
            (x + 0.5) as i64
        } else {
            (x - 0.5) as i64
        }
    }

    /// Run the whole pipeline on an input WAVE file, returning the output
    /// WAVE bytes.
    pub fn run(mut self, input_wav: &[u8]) -> Vec<u8> {
        self.ldint();
        let n = self.cfg.fft_size as usize;
        {
            let (re, im) = (&mut self.coef1_re, &mut self.coef1_im);
            Self::ffw(re, im, n, 1.0);
        }
        {
            let (re, im) = (&mut self.coef2_re, &mut self.coef2_im);
            Self::ffw(re, im, n, 0.3);
        }
        self.wav_load(input_wav);

        let np = self.cfg.n_points as usize;
        let nsp = self.cfg.n_speakers as usize;
        for p in 0..np {
            self.derive_tp(p);
            for s in 0..nsp {
                if (p as i64 + s as i64) % 13 != 0 {
                    self.calculate_gain_pq(p, s);
                    self.vsmult2d(p, s);
                }
            }
        }

        let nk = self.cfg.n_chunks as usize;
        let cl = self.cfg.chunk_len as usize;
        for c in 0..nk {
            // AudioIo_getFrames (lib_memcpy4)
            for i in 0..cl {
                self.inbuf[i] = self.src[c * cl + i];
            }
            // zeroCplxVec
            for i in 0..n {
                self.fft_re[i] = 0.0;
                self.fft_im[i] = 0.0;
            }
            // r2c
            for i in 0..cl {
                self.fft_re[i] = self.inbuf[i] as f64;
            }
            self.fft1d(1);
            self.filter_process();
            self.fft1d(-1);
            // c2r
            for i in 0..cl {
                self.procbuf[i] = self.fft_re[i] as f32;
            }
            self.delay_line_process_chunk(c);
            self.audio_io_set_frames(c);
        }
        self.wav_store()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wav::{decode_wav, encode_wav, synth_source};

    #[test]
    fn reference_produces_wellformed_output() {
        let cfg = WfsConfig::tiny();
        let input = encode_wav(
            1,
            cfg.sample_rate,
            &synth_source(cfg.n_samples(), cfg.sample_rate, 1),
        );
        let out = RefWfs::new(cfg).run(&input);
        let w = decode_wav(&out).unwrap();
        assert_eq!(w.n_channels as u32, cfg.n_speakers);
        assert_eq!(w.samples.len() as u32, cfg.n_samples() * cfg.n_speakers);
        assert!(w.samples.iter().any(|&s| s != 0), "non-silent output");
    }

    #[test]
    fn fft_roundtrip_recovers_signal() {
        let cfg = WfsConfig::tiny();
        let mut r = RefWfs::new(cfg);
        r.ldint();
        let n = cfg.fft_size as usize;
        let orig: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        r.fft_re.copy_from_slice(&orig);
        r.fft_im.iter_mut().for_each(|x| *x = 0.0);
        r.fft1d(1);
        r.fft1d(-1);
        for (a, b) in r.fft_re.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let cfg = WfsConfig::tiny();
        let mut r = RefWfs::new(cfg);
        r.ldint();
        let n = cfg.fft_size as usize;
        let sig: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).cos()).collect();
        r.fft_re.copy_from_slice(&sig);
        r.fft_im.iter_mut().for_each(|x| *x = 0.0);
        r.fft1d(1);
        // Naive DFT with the same sign convention (dir=+1 ⇒ e^{+iθ}).
        for k in 0..n {
            let mut re = 0.0;
            let mut im = 0.0;
            for (t, &x) in sig.iter().enumerate() {
                let ang = 2.0 * PI * (k * t) as f64 / n as f64;
                re += x * ang.cos();
                im += x * ang.sin();
            }
            assert!(
                (r.fft_re[k] - re).abs() < 1e-6,
                "re[{k}]: {} vs {re}",
                r.fft_re[k]
            );
            assert!(
                (r.fft_im[k] - im).abs() < 1e-6,
                "im[{k}]: {} vs {im}",
                r.fft_im[k]
            );
        }
    }

    #[test]
    fn bitrev_is_an_involution() {
        for bits in 1..12u32 {
            for x in 0..(1i64 << bits).min(256) {
                let r = RefWfs::bitrev(x, bits);
                assert!(r < (1 << bits));
                assert_eq!(RefWfs::bitrev(r, bits), x);
            }
        }
    }

    #[test]
    fn lib_round_clamps_and_rounds_half_away() {
        assert_eq!(RefWfs::lib_round(1e9), 32767);
        assert_eq!(RefWfs::lib_round(-1e9), -32768);
        assert_eq!(RefWfs::lib_round(0.4), 0);
        assert_eq!(RefWfs::lib_round(0.5), 1);
        assert_eq!(RefWfs::lib_round(-0.5), -1);
        assert_eq!(RefWfs::lib_round(-0.4), 0);
    }

    #[test]
    fn deterministic_output() {
        let cfg = WfsConfig::tiny();
        let input = encode_wav(
            1,
            cfg.sample_rate,
            &synth_source(cfg.n_samples(), cfg.sample_rate, 3),
        );
        let a = RefWfs::new(cfg).run(&input);
        let b = RefWfs::new(cfg).run(&input);
        assert_eq!(a, b);
    }
}
