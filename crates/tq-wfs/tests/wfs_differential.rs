//! End-to-end differential test: the compiled wfs application running on
//! the VM must produce byte-identical output to the native reference
//! pipeline.

use tq_wfs::{RefWfs, WfsApp, WfsConfig};

#[test]
fn vm_output_matches_reference_tiny() {
    let app = WfsApp::build(WfsConfig::tiny());
    let (vm, exit) = app.run_bare().expect("wfs runs");
    assert!(
        exit.icount > 100_000,
        "non-trivial run: {} instructions",
        exit.icount
    );

    let vm_out = app.output_wav(&vm).expect("output.wav written").to_vec();
    let ref_out = app.reference_output();
    assert_eq!(vm_out.len(), ref_out.len(), "output sizes match");
    assert_eq!(
        vm_out, ref_out,
        "VM and reference outputs are byte-identical"
    );
}

#[test]
fn vm_output_matches_reference_small() {
    let app = WfsApp::build_seeded(WfsConfig::small(), 7);
    let (vm, _) = app.run_bare().expect("wfs runs");
    let vm_out = app.output_wav(&vm).expect("output.wav written").to_vec();
    assert_eq!(vm_out, app.reference_output());
}

#[test]
fn output_is_sound_not_noise() {
    // The output must actually contain delayed/attenuated copies of the
    // source — check that at least one speaker channel correlates with the
    // input signal.
    let cfg = WfsConfig::tiny();
    let app = WfsApp::build(cfg);
    let (vm, _) = app.run_bare().unwrap();
    let out = tq_wfs::wav::decode_wav(app.output_wav(&vm).unwrap()).unwrap();
    let inp = tq_wfs::wav::decode_wav(&app.input_wav).unwrap();

    let ns = cfg.n_speakers as usize;
    let n = inp.samples.len();
    let mut best = 0.0f64;
    for s in 0..ns {
        for lag in 0..64usize {
            let mut dot = 0.0;
            let mut na = 0.0;
            let mut nb = 0.0;
            for t in lag..n {
                let a = inp.samples[t - lag] as f64;
                let b = out.samples[t * ns + s] as f64;
                dot += a * b;
                na += a * a;
                nb += b * b;
            }
            if na > 0.0 && nb > 0.0 {
                best = best.max(dot.abs() / (na.sqrt() * nb.sqrt()));
            }
        }
    }
    assert!(
        best > 0.3,
        "output correlates with input (best |r| = {best:.3})"
    );
}

#[test]
fn changing_config_changes_instruction_count_proportionally() {
    let tiny = WfsApp::build(WfsConfig::tiny());
    let (_, e1) = tiny.run_bare().unwrap();

    let mut bigger = WfsConfig::tiny();
    bigger.n_chunks *= 2;
    let app2 = WfsApp::build(bigger);
    let (_, e2) = app2.run_bare().unwrap();

    assert!(e2.icount > e1.icount, "more chunks → more instructions");
    let ratio = e2.icount as f64 / e1.icount as f64;
    assert!(
        ratio > 1.2 && ratio < 2.5,
        "roughly linear in chunks: {ratio:.2}"
    );
}

#[test]
fn reference_matches_vm_for_multiple_seeds() {
    for seed in [1u64, 99, 4242] {
        let app = WfsApp::build_seeded(WfsConfig::tiny(), seed);
        let (vm, _) = app.run_bare().unwrap();
        assert_eq!(
            app.output_wav(&vm).unwrap(),
            &app.reference_output()[..],
            "seed {seed}"
        );
    }
}

#[test]
fn full_output_decodes_with_correct_shape() {
    let cfg = WfsConfig::tiny();
    let app = WfsApp::build(cfg);
    let (vm, _) = app.run_bare().unwrap();
    let out = tq_wfs::wav::decode_wav(app.output_wav(&vm).unwrap()).unwrap();
    assert_eq!(out.n_channels as u32, cfg.n_speakers);
    assert_eq!(out.sample_rate, cfg.sample_rate);
    assert_eq!(out.samples.len() as u32, cfg.n_samples() * cfg.n_speakers);
}

/// The reference FFT path through the VM: drive `fft1d` in isolation by
/// checking that a silent input yields a silent output.
#[test]
fn silence_in_silence_out() {
    let cfg = WfsConfig::tiny();
    let module = tq_wfs::build_module(&cfg);
    let compiled = tq_kernelc::compile(&module).unwrap();
    let mut vm = tq_vm::Vm::new(compiled.program).unwrap();
    // Stage an all-zero input.
    let silent = tq_wfs::wav::encode_wav(1, cfg.sample_rate, &vec![0i16; cfg.n_samples() as usize]);
    vm.fs_mut().add_file(tq_wfs::INPUT_WAV, silent);
    vm.run(None).unwrap();
    let out = tq_wfs::wav::decode_wav(vm.fs().file(tq_wfs::OUTPUT_WAV).unwrap()).unwrap();
    // Dither is ±~1 LSB; nothing should exceed 2 counts.
    assert!(
        out.samples.iter().all(|&s| s.abs() <= 2),
        "max |sample| = {}",
        out.samples.iter().map(|s| s.abs()).max().unwrap()
    );
}

#[test]
fn reference_struct_standalone() {
    let cfg = WfsConfig::tiny();
    let input = tq_wfs::wav::encode_wav(
        1,
        cfg.sample_rate,
        &tq_wfs::wav::synth_source(cfg.n_samples(), cfg.sample_rate, 5),
    );
    let out = RefWfs::new(cfg).run(&input);
    assert_eq!(out.len() as u32, 44 + cfg.n_samples() * cfg.n_speakers * 2);
}

/// The paper's third command-line option: excluding library/OS routines.
/// `lib_round` (in the `libsim` image) is called once per output sample by
/// `wav_store`; under `AttributeToCaller` its memory traffic lands on
/// `wav_store`, and under `Drop` it disappears from the report.
#[test]
fn library_exclusion_option_changes_attribution() {
    use tq_tquad::{LibPolicy, TquadOptions, TquadTool};

    let cfg = WfsConfig::tiny();
    let app = WfsApp::build(cfg);
    let run = |policy: LibPolicy| {
        let mut vm = app.make_vm();
        let t = vm.attach_tool(Box::new(TquadTool::new(
            TquadOptions::default()
                .with_interval(1_000)
                .with_lib_policy(policy),
        )));
        vm.run(None).expect("runs");
        vm.detach_tool::<TquadTool>(t).unwrap().into_profile()
    };

    let attr = run(LibPolicy::AttributeToCaller);
    let drop = run(LibPolicy::Drop);
    let track = run(LibPolicy::Track);

    let reads =
        |p: &tq_tquad::TquadProfile, name: &str| p.kernel(name).unwrap().series.totals(true).0;

    // Dropping library traffic shrinks wav_store's attributed reads.
    assert!(
        reads(&drop, "wav_store") < reads(&attr, "wav_store"),
        "drop {} vs attribute {}",
        reads(&drop, "wav_store"),
        reads(&attr, "wav_store")
    );
    assert!(drop.dropped_accesses > 0);
    assert_eq!(attr.dropped_accesses, 0);

    // Under Track, lib_round appears as its own kernel and receives exactly
    // the traffic that moved off wav_store.
    assert_eq!(
        reads(&track, "lib_round") + reads(&track, "wav_store"),
        reads(&attr, "wav_store")
    );
    assert!(
        reads(&attr, "lib_round") == 0,
        "untracked routines report nothing"
    );

    // The per-sample call count: lib_round once per output sample.
    assert_eq!(
        track.kernel("lib_round").unwrap().calls,
        (cfg.n_samples() * cfg.n_speakers) as u64
    );
}
