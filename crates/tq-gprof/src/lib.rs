//! # tq-gprof — a gprof-style sampling flat profiler for the VM
//!
//! The paper's case study starts from a *gprof* flat profile (Table I): per
//! function, the percentage of execution time, self seconds, call count and
//! ms/call, obtained by sampling the instruction pointer every 10 ms and
//! counting function entries. This crate reproduces that estimator on the
//! VM: the IP is sampled at a fixed *virtual-time* interval (instructions),
//! function entries are counted from routine-entry events, and cumulative
//! (function + descendants) time is attributed through a call stack — which
//! is how `total ms/call` is obtained. A [`TimeModel`] (CPI × clock)
//! converts instruction counts to seconds, exactly the conversion the paper
//! describes for turning tQUAD's platform-independent timings into
//! wall-clock estimates.

use tq_isa::RoutineId;
use tq_report::{f as fmt_f, Align, Table};
use tq_tquad::CallStack;
use tq_vm::{hooks, Event, HookMask, InsContext, MergeTool, ProgramInfo, ShardContext, Tool};

/// Counter for IP samples taken — the sampling profiler's flush point.
fn samples_total() -> &'static tq_obs::Counter {
    use std::sync::OnceLock;
    static C: OnceLock<tq_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        tq_obs::counter(
            "tq_gprof_samples_total",
            "Instruction-pointer samples taken by the gprof tool",
        )
    })
}

/// Converts virtual time (instructions) to seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeModel {
    /// Cycles per instruction.
    pub cpi: f64,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
}

impl TimeModel {
    /// The paper's testbed: an Intel Core 2 Quad Q9550 @ 2.83 GHz, modelled
    /// at CPI 1.
    pub fn q9550() -> Self {
        TimeModel {
            cpi: 1.0,
            clock_hz: 2.83e9,
        }
    }

    /// Seconds for `instructions` of virtual time.
    pub fn seconds(&self, instructions: f64) -> f64 {
        instructions * self.cpi / self.clock_hz
    }

    /// Instructions corresponding to `seconds` (e.g. the 10 ms gprof
    /// sampling period).
    pub fn instructions(&self, seconds: f64) -> u64 {
        (seconds * self.clock_hz / self.cpi) as u64
    }
}

/// Profiler options.
#[derive(Clone, Copy, Debug)]
pub struct GprofOptions {
    /// Sampling interval in instructions (gprof's period is 0.01 s; use
    /// [`TimeModel::instructions`] to derive it, or pick a scaled value).
    pub sample_interval: u64,
    /// Time model for the seconds columns.
    pub time_model: TimeModel,
    /// Also profile library-image routines (gprof only sees the
    /// `-pg`-compiled main objects, so the default is false).
    pub track_libs: bool,
}

impl Default for GprofOptions {
    fn default() -> Self {
        GprofOptions {
            sample_interval: 10_000,
            time_model: TimeModel::q9550(),
            track_libs: false,
        }
    }
}

/// The sampling profiler tool.
pub struct GprofTool {
    opts: GprofOptions,
    names: Vec<String>,
    tracked: Vec<bool>,
    self_samples: Vec<u64>,
    cum_samples: Vec<u64>,
    calls: Vec<u64>,
    extra_instr: Vec<u64>,
    stack: CallStack,
    total_samples: u64,
    edges: std::collections::HashMap<(RoutineId, RoutineId), u64>,
}

impl GprofTool {
    /// New profiler.
    pub fn new(opts: GprofOptions) -> Self {
        assert!(opts.sample_interval > 0, "sample interval must be positive");
        GprofTool {
            opts,
            names: Vec::new(),
            tracked: Vec::new(),
            self_samples: Vec::new(),
            cum_samples: Vec::new(),
            calls: Vec::new(),
            extra_instr: Vec::new(),
            stack: CallStack::new(),
            total_samples: 0,
            edges: std::collections::HashMap::new(),
        }
    }

    /// Consume the tool into a flat profile.
    pub fn into_profile(self) -> FlatProfile {
        let rows = self
            .names
            .iter()
            .enumerate()
            .filter(|(i, _)| self.tracked[*i])
            .map(|(i, name)| FlatRow {
                rtn: RoutineId(i as u32),
                name: name.clone(),
                self_samples: self.self_samples[i],
                cum_samples: self.cum_samples[i],
                calls: self.calls[i],
                extra_instr: self.extra_instr[i],
            })
            .collect();
        let mut edges: Vec<CallEdge> = self
            .edges
            .into_iter()
            .map(|((caller, callee), count)| CallEdge {
                caller_name: self.names[caller.idx()].clone(),
                callee_name: self.names[callee.idx()].clone(),
                caller,
                callee,
                count,
            })
            .collect();
        // Secondary id keys keep the order deterministic across processes
        // (HashMap iteration order is randomised per process, and sharded
        // replay must be byte-identical to sequential).
        edges.sort_by_key(|e| (std::cmp::Reverse(e.count), e.caller.0, e.callee.0));
        FlatProfile {
            sample_interval: self.opts.sample_interval,
            time_model: self.opts.time_model,
            total_samples: self.total_samples,
            rows,
            edges,
        }
    }
}

impl Tool for GprofTool {
    fn name(&self) -> &str {
        "gprof-sim"
    }

    fn on_attach(&mut self, info: &ProgramInfo) {
        for r in &info.routines {
            self.names.push(r.name.clone());
            self.tracked.push(r.main_image || self.opts.track_libs);
            self.self_samples.push(0);
            self.cum_samples.push(0);
            self.calls.push(0);
            self.extra_instr.push(0);
        }
    }

    fn instrument_ins(&mut self, ins: &InsContext<'_>) -> HookMask {
        // Only function entries (mcount) and returns; time comes from ticks.
        let mut m = hooks::NONE;
        if ins.is_rtn_start {
            m |= hooks::RTN_ENTER;
        }
        if ins.inst.is_ret() {
            m |= hooks::RET;
        }
        m
    }

    fn tick_interval(&self) -> Option<u64> {
        Some(self.opts.sample_interval)
    }

    fn event_mask(&self) -> HookMask {
        // Replay delivery mask: entries, returns and ticks only. Because
        // reduced `--instr` modes gate *memory* events exclusively, gprof
        // output is exact — byte-identical — under every mode (pinned by
        // the instr-mode integration tests).
        hooks::RTN_ENTER | hooks::RET | hooks::TICK
    }

    fn on_event(&mut self, ev: &Event) {
        match *ev {
            Event::Tick { rtn, .. } => {
                samples_total().inc();
                self.total_samples += 1;
                if rtn != RoutineId::INVALID && self.tracked[rtn.idx()] {
                    self.self_samples[rtn.idx()] += 1;
                }
                // Cumulative attribution: every distinct routine on the
                // stack was "executing or waiting on a descendant".
                let mut attributed = Vec::new();
                for r in self.stack.distinct_routines() {
                    if self.tracked[r.idx()] {
                        self.cum_samples[r.idx()] += 1;
                        attributed.push(r);
                    }
                }
                if rtn != RoutineId::INVALID
                    && self.tracked[rtn.idx()]
                    && !attributed.contains(&rtn)
                {
                    self.cum_samples[rtn.idx()] += 1;
                }
            }
            Event::RoutineEnter { rtn, sp, .. } if self.tracked[rtn.idx()] => {
                // Call-graph edge from the current (tracked) caller —
                // gprof's second output section.
                if let Some(caller) = self.stack.current() {
                    *self.edges.entry((caller, rtn)).or_insert(0) += 1;
                }
                self.stack.enter(rtn, sp);
                self.calls[rtn.idx()] += 1;
            }
            Event::Ret { rtn, .. } => {
                self.stack.ret_in(rtn);
            }
            _ => {}
        }
    }
}

impl MergeTool for GprofTool {
    fn fork(&self, info: &ProgramInfo, ctx: &ShardContext) -> Box<dyn MergeTool> {
        let mut g = GprofTool::new(self.opts);
        g.on_attach(info);
        // Resume the call stack this tool would hold at the shard boundary
        // (all-routines with track_libs, main-image otherwise). Seeded
        // frames count neither as calls nor call-graph edges — the shard
        // that replayed the entry already recorded both.
        for &(rtn, sp) in ctx.frames(self.opts.track_libs) {
            g.stack.enter(rtn, sp);
        }
        Box::new(g)
    }

    fn absorb(&mut self, other: Box<dyn MergeTool>) {
        let other = other
            .into_any()
            .downcast::<GprofTool>()
            .expect("absorb: shard is not a GprofTool");
        self.total_samples += other.total_samples;
        for (mine, more) in [
            (&mut self.self_samples, &other.self_samples),
            (&mut self.cum_samples, &other.cum_samples),
            (&mut self.calls, &other.calls),
            (&mut self.extra_instr, &other.extra_instr),
        ] {
            for (a, b) in mine.iter_mut().zip(more) {
                *a += b;
            }
        }
        for (edge, count) in &other.edges {
            *self.edges.entry(*edge).or_insert(0) += count;
        }
    }
}

/// One flat-profile row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatRow {
    /// Routine id.
    pub rtn: RoutineId,
    /// Function name.
    pub name: String,
    /// Samples whose IP fell inside this function.
    pub self_samples: u64,
    /// Samples with this function anywhere on the call stack.
    pub cum_samples: u64,
    /// Invocation count.
    pub calls: u64,
    /// Extra virtual cost charged to this function (instruction-equivalents
    /// injected by [`FlatProfile::add_cost`] — the Table III emulation of
    /// running under a heavyweight instrumentation tool).
    pub extra_instr: u64,
}

/// One caller→callee edge of the call graph (gprof's second section).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallEdge {
    /// Calling routine.
    pub caller: RoutineId,
    /// Called routine.
    pub callee: RoutineId,
    /// Caller symbol name.
    pub caller_name: String,
    /// Callee symbol name.
    pub callee_name: String,
    /// Number of calls along this edge.
    pub count: u64,
}

/// A gprof-style flat profile.
#[derive(Clone, Debug, PartialEq)]
pub struct FlatProfile {
    /// Sampling interval in instructions.
    pub sample_interval: u64,
    /// Time model for seconds columns.
    pub time_model: TimeModel,
    /// Total samples taken over the run.
    pub total_samples: u64,
    /// Per-function rows (main-image functions unless `track_libs`).
    pub rows: Vec<FlatRow>,
    /// Caller→callee edges with call counts, heaviest first.
    pub edges: Vec<CallEdge>,
}

impl FlatProfile {
    /// Self time of a row, in instruction-equivalents (samples × interval +
    /// injected cost).
    pub fn self_instr(&self, row: &FlatRow) -> f64 {
        (row.self_samples * self.sample_interval + row.extra_instr) as f64
    }

    fn total_instr(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| self.self_instr(r))
            .sum::<f64>()
            .max(1.0)
    }

    /// The `%time` column: this function's share of total self time.
    pub fn pct_time(&self, row: &FlatRow) -> f64 {
        100.0 * self.self_instr(row) / self.total_instr()
    }

    /// The `self seconds` column.
    pub fn self_seconds(&self, row: &FlatRow) -> f64 {
        self.time_model.seconds(self.self_instr(row))
    }

    /// The `self ms/call` column (0 when never called).
    pub fn self_ms_per_call(&self, row: &FlatRow) -> f64 {
        if row.calls == 0 {
            0.0
        } else {
            1000.0 * self.self_seconds(row) / row.calls as f64
        }
    }

    /// The `total ms/call` column (function + descendants per call).
    pub fn total_ms_per_call(&self, row: &FlatRow) -> f64 {
        if row.calls == 0 {
            0.0
        } else {
            let cum = (row.cum_samples * self.sample_interval) as f64 + row.extra_instr as f64;
            1000.0 * self.time_model.seconds(cum) / row.calls as f64
        }
    }

    /// Inject extra virtual cost into a function (used to model the
    /// overhead a co-running analysis tool adds to that function's
    /// execution — the paper's "QUAD-instrumented" profile of Table III).
    pub fn add_cost(&mut self, rtn: RoutineId, instr: u64) {
        if let Some(row) = self.rows.iter_mut().find(|r| r.rtn == rtn) {
            row.extra_instr += instr;
        }
    }

    /// Look a row up by name.
    pub fn row(&self, name: &str) -> Option<&FlatRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Fold another partial flat profile of the same program and sampling
    /// configuration into this one (the reduce step of sharded replay):
    /// sample/call/cost counters are summed row-wise, call-graph edges are
    /// summed per (caller, callee) pair and re-ranked. Commutative and
    /// associative.
    ///
    /// Panics if the profiles disagree on sampling interval or row table.
    pub fn merge(&mut self, other: &FlatProfile) {
        assert_eq!(
            self.sample_interval, other.sample_interval,
            "shards must share the sampling interval"
        );
        assert_eq!(
            self.rows.len(),
            other.rows.len(),
            "shards must share the routine table"
        );
        self.total_samples += other.total_samples;
        for (row, more) in self.rows.iter_mut().zip(&other.rows) {
            debug_assert_eq!(row.rtn, more.rtn);
            row.self_samples += more.self_samples;
            row.cum_samples += more.cum_samples;
            row.calls += more.calls;
            row.extra_instr += more.extra_instr;
        }
        for e in &other.edges {
            match self
                .edges
                .iter_mut()
                .find(|m| m.caller == e.caller && m.callee == e.callee)
            {
                Some(m) => m.count += e.count,
                None => self.edges.push(e.clone()),
            }
        }
        self.edges
            .sort_by_key(|e| (std::cmp::Reverse(e.count), e.caller.0, e.callee.0));
    }

    /// Rows sorted by `%time` descending, zero rows dropped — the flat
    /// profile as gprof prints it.
    pub fn ranked(&self) -> Vec<&FlatRow> {
        let mut rows: Vec<&FlatRow> = self
            .rows
            .iter()
            .filter(|r| self.self_instr(r) > 0.0 || r.calls > 0)
            .collect();
        rows.sort_by(|a, b| {
            self.self_instr(b)
                .partial_cmp(&self.self_instr(a))
                .expect("no NaN")
                .then(a.name.cmp(&b.name))
        });
        rows
    }

    /// Render gprof's call-graph section: caller → callee call counts.
    pub fn call_graph_table(&self, title: &str) -> Table {
        let mut t = Table::new(title)
            .col("caller", Align::Left)
            .col("callee", Align::Left)
            .col("calls", Align::Right);
        for e in &self.edges {
            t.row(vec![
                e.caller_name.clone(),
                e.callee_name.clone(),
                e.count.to_string(),
            ]);
        }
        t
    }

    /// Render the Table I-style flat profile.
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(title)
            .col("kernel", Align::Left)
            .col("%time", Align::Right)
            .col("self seconds", Align::Right)
            .col("calls", Align::Right)
            .col("self ms/call", Align::Right)
            .col("total ms/call", Align::Right);
        for row in self.ranked() {
            t.row(vec![
                row.name.clone(),
                fmt_f(self.pct_time(row), 2),
                fmt_f(self.self_seconds(row), 2),
                row.calls.to_string(),
                fmt_f(self.self_ms_per_call(row), 2),
                fmt_f(self.total_ms_per_call(row), 2),
            ]);
        }
        t
    }
}

/// Trend of a kernel between two profiles (Table III's arrows).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trend {
    /// Contribution roughly unchanged (↔).
    Flat,
    /// Moderate increase (↑).
    Up,
    /// Strong increase (↑↑).
    UpUp,
    /// Moderate decrease (↓).
    Down,
    /// Strong decrease (↓↓).
    DownDown,
}

impl Trend {
    /// The paper's arrow glyphs (ASCII rendition).
    pub fn arrow(self) -> &'static str {
        match self {
            Trend::Flat => "<->",
            Trend::Up => "^",
            Trend::UpUp => "^^",
            Trend::Down => "v",
            Trend::DownDown => "vv",
        }
    }

    /// Classify the change from `old_pct` to `new_pct` of total time.
    pub fn classify(old_pct: f64, new_pct: f64) -> Trend {
        if old_pct <= 0.0 {
            return if new_pct > 0.5 {
                Trend::UpUp
            } else {
                Trend::Flat
            };
        }
        let ratio = new_pct / old_pct;
        if ratio >= 2.0 {
            Trend::UpUp
        } else if ratio >= 1.25 {
            Trend::Up
        } else if ratio <= 0.2 {
            Trend::DownDown
        } else if ratio <= 0.8 {
            Trend::Down
        } else {
            Trend::Flat
        }
    }
}

/// Render the Table III-style comparison: the `instrumented` profile with
/// each kernel's rank and its trend versus the `baseline` profile.
pub fn comparison_table(baseline: &FlatProfile, instrumented: &FlatProfile, title: &str) -> Table {
    let mut t = Table::new(title)
        .col("kernel", Align::Left)
        .col("% time", Align::Right)
        .col("self seconds", Align::Right)
        .col("rank", Align::Right)
        .col("trend", Align::Left);
    let ranked = instrumented.ranked();
    for row in baseline.ranked() {
        let new_row = instrumented.rows.iter().find(|r| r.name == row.name);
        let (pct, secs, rank) = match new_row {
            Some(nr) => (
                instrumented.pct_time(nr),
                instrumented.self_seconds(nr),
                ranked
                    .iter()
                    .position(|r| r.name == nr.name)
                    .map(|p| p + 1)
                    .unwrap_or(0),
            ),
            None => (0.0, 0.0, 0),
        };
        let trend = Trend::classify(baseline.pct_time(row), pct);
        t.row(vec![
            row.name.clone(),
            fmt_f(pct, 2),
            fmt_f(secs, 2),
            rank.to_string(),
            trend.arrow().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_vm::RoutineMeta;

    fn info() -> ProgramInfo {
        let mk = |id: u32, name: &str, main: bool| RoutineMeta {
            id: RoutineId(id),
            name: name.into(),
            image: if main { "app" } else { "libsim" }.into(),
            main_image: main,
            start: 0x10000 + id as u64 * 0x100,
            end: 0x10000 + id as u64 * 0x100 + 0x100,
        };
        ProgramInfo {
            routines: vec![
                mk(0, "main", true),
                mk(1, "work", true),
                mk(2, "lib_fn", false),
            ],
            stack_base: 0x3FFF_FF00,
            entry: 0x10000,
        }
    }

    #[test]
    fn sampling_and_calls() {
        let mut g = GprofTool::new(GprofOptions {
            sample_interval: 100,
            ..Default::default()
        });
        g.on_attach(&info());
        g.on_event(&Event::RoutineEnter {
            rtn: RoutineId(0),
            sp: 1000,
            icount: 1,
        });
        g.on_event(&Event::RoutineEnter {
            rtn: RoutineId(1),
            sp: 900,
            icount: 5,
        });
        // Three ticks inside `work`, one after returning to `main`.
        for i in 0..3 {
            g.on_event(&Event::Tick {
                icount: 100 * (i + 1),
                ip: 0x10100,
                rtn: RoutineId(1),
            });
        }
        g.on_event(&Event::Ret {
            ip: 0x10180,
            return_to: 0x10008,
            icount: 350,
            rtn: RoutineId(1),
        });
        g.on_event(&Event::Tick {
            icount: 400,
            ip: 0x10008,
            rtn: RoutineId(0),
        });

        let p = g.into_profile();
        assert_eq!(p.total_samples, 4);
        let work = p.row("work").unwrap();
        let main = p.row("main").unwrap();
        assert_eq!(work.self_samples, 3);
        assert_eq!(work.cum_samples, 3);
        assert_eq!(main.self_samples, 1);
        assert_eq!(main.cum_samples, 4, "main is on the stack for all samples");
        assert_eq!(work.calls, 1);
        assert!((p.pct_time(work) - 75.0).abs() < 1e-9);
        assert!(p.total_ms_per_call(main) >= p.self_ms_per_call(main));
    }

    #[test]
    fn untracked_lib_samples_do_not_count() {
        let mut g = GprofTool::new(GprofOptions {
            sample_interval: 100,
            ..Default::default()
        });
        g.on_attach(&info());
        g.on_event(&Event::RoutineEnter {
            rtn: RoutineId(2),
            sp: 1000,
            icount: 1,
        });
        g.on_event(&Event::Tick {
            icount: 100,
            ip: 0x10200,
            rtn: RoutineId(2),
        });
        let p = g.into_profile();
        assert_eq!(p.total_samples, 1);
        assert!(p.rows.iter().all(|r| r.self_samples == 0));
        assert!(p.row("lib_fn").is_none());
    }

    #[test]
    fn ranked_sorts_by_self_time() {
        let mut g = GprofTool::new(GprofOptions {
            sample_interval: 10,
            ..Default::default()
        });
        g.on_attach(&info());
        for _ in 0..5 {
            g.on_event(&Event::Tick {
                icount: 0,
                ip: 0x10100,
                rtn: RoutineId(1),
            });
        }
        g.on_event(&Event::Tick {
            icount: 0,
            ip: 0x10000,
            rtn: RoutineId(0),
        });
        let p = g.into_profile();
        let names: Vec<&str> = p.ranked().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["work", "main"]);
    }

    #[test]
    fn add_cost_changes_ranking() {
        let mut g = GprofTool::new(GprofOptions {
            sample_interval: 10,
            ..Default::default()
        });
        g.on_attach(&info());
        for _ in 0..5 {
            g.on_event(&Event::Tick {
                icount: 0,
                ip: 0x10100,
                rtn: RoutineId(1),
            });
        }
        g.on_event(&Event::Tick {
            icount: 0,
            ip: 0x10000,
            rtn: RoutineId(0),
        });
        let mut p = g.into_profile();
        p.add_cost(RoutineId(0), 1_000);
        let names: Vec<&str> = p.ranked().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["main", "work"], "injected cost re-ranks");
    }

    #[test]
    fn trend_classification() {
        assert_eq!(Trend::classify(10.0, 10.5), Trend::Flat);
        assert_eq!(Trend::classify(4.0, 11.0), Trend::UpUp);
        assert_eq!(Trend::classify(10.0, 14.0), Trend::Up);
        assert_eq!(Trend::classify(8.19, 0.42), Trend::DownDown);
        assert_eq!(Trend::classify(14.0, 10.0), Trend::Down);
        assert_eq!(Trend::classify(0.0, 5.0), Trend::UpUp);
    }

    #[test]
    fn time_model_roundtrip() {
        let tm = TimeModel::q9550();
        let instr = tm.instructions(0.01);
        assert!((tm.seconds(instr as f64) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn table_and_comparison_render() {
        let mut g = GprofTool::new(GprofOptions {
            sample_interval: 10,
            ..Default::default()
        });
        g.on_attach(&info());
        g.on_event(&Event::RoutineEnter {
            rtn: RoutineId(1),
            sp: 100,
            icount: 1,
        });
        g.on_event(&Event::Tick {
            icount: 10,
            ip: 0x10100,
            rtn: RoutineId(1),
        });
        let p = g.into_profile();
        let s = p.table("FLAT PROFILE").render();
        assert!(s.contains("FLAT PROFILE"));
        assert!(s.contains("work"));
        assert!(s.contains("100.00"));

        let mut p2 = p.clone();
        p2.add_cost(RoutineId(0), 100);
        let c = comparison_table(&p, &p2, "INSTRUMENTED").render();
        assert!(c.contains("trend"));
        assert!(c.contains("work"));
    }
}

#[cfg(test)]
mod call_graph_tests {
    use super::*;
    use tq_vm::RoutineMeta;

    #[test]
    fn edges_record_caller_callee_counts() {
        let mk = |id: u32, name: &str| RoutineMeta {
            id: RoutineId(id),
            name: name.into(),
            image: "app".into(),
            main_image: true,
            start: 0x10000 + id as u64 * 0x100,
            end: 0x10100 + id as u64 * 0x100,
        };
        let info = ProgramInfo {
            routines: vec![mk(0, "main"), mk(1, "work"), mk(2, "leaf")],
            stack_base: 0x3FFF_FF00,
            entry: 0x10000,
        };
        let mut g = GprofTool::new(GprofOptions::default());
        g.on_attach(&info);

        let enter = |g: &mut GprofTool, rtn: u32, sp: u64| {
            g.on_event(&Event::RoutineEnter {
                rtn: RoutineId(rtn),
                sp,
                icount: 0,
            });
        };
        let ret = |g: &mut GprofTool, rtn: u32| {
            g.on_event(&Event::Ret {
                ip: 0,
                return_to: 0,
                icount: 0,
                rtn: RoutineId(rtn),
            });
        };

        enter(&mut g, 0, 1000);
        for _ in 0..3 {
            enter(&mut g, 1, 900);
            enter(&mut g, 2, 800);
            ret(&mut g, 2);
            ret(&mut g, 1);
        }
        enter(&mut g, 2, 900); // main calls leaf directly once
        ret(&mut g, 2);

        let p = g.into_profile();
        let edge = |a: &str, b: &str| {
            p.edges
                .iter()
                .find(|e| e.caller_name == a && e.callee_name == b)
                .map(|e| e.count)
                .unwrap_or(0)
        };
        assert_eq!(edge("main", "work"), 3);
        assert_eq!(edge("work", "leaf"), 3);
        assert_eq!(edge("main", "leaf"), 1);
        assert_eq!(edge("leaf", "work"), 0);
        // Heaviest-first ordering.
        assert!(p.edges[0].count >= p.edges.last().unwrap().count);
        // Table renders.
        let s = p.call_graph_table("CALL GRAPH").render();
        assert!(s.contains("main") && s.contains("work"));
    }
}
