//! A full tq-profd session in one process: start the service on an
//! ephemeral port, submit a batch of profiling jobs from concurrent
//! clients, and watch the capture cache do its job — one VM run serves
//! every tool, interval and policy variant, and repeats come back
//! byte-identical from the result memo.
//!
//! ```sh
//! cargo run --release --example profd_session
//! ```

use tquad_suite::profd::{
    AppId, Client, JobSpec, Scale, Server, ServerConfig, StackPolicy, ToolId,
};
use tquad_suite::report::Json;

fn main() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr().to_string();
    println!("tq-profd on {addr}\n");

    // Eight job variants over one workload, submitted from four concurrent
    // clients. All of them share a single capture run.
    let jobs: Vec<JobSpec> = vec![
        JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad),
        JobSpec {
            interval: 5_000,
            ..JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad)
        },
        JobSpec {
            interval: 50_000,
            ..JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad)
        },
        JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Quad),
        JobSpec {
            stack: StackPolicy::Exclude,
            ..JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Quad)
        },
        JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Gprof),
        JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Phases),
        // An exact repeat: served from the result memo, byte-identical.
        JobSpec::new(AppId::Wfs, Scale::Tiny, ToolId::Tquad),
    ];

    let results = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let handles: Vec<_> = jobs
            .chunks(2)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    chunk
                        .iter()
                        .map(|spec| (spec.clone(), client.submit(spec.clone()).expect("submit")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });

    for (spec, (profile, cached)) in &results {
        println!(
            "{:<6} interval={:<6} stack={:<7} -> {:>6} bytes of JSON{}",
            spec.tool.as_str(),
            spec.interval,
            if spec.stack.include() { "incl" } else { "excl" },
            profile.render().len(),
            if *cached { "  (memo hit)" } else { "" },
        );
    }

    // The repeat really is the same bytes as its first run.
    let first = results
        .iter()
        .find(|(s, _)| *s == jobs[0])
        .map(|(_, (p, _))| p.render())
        .expect("first tquad job");
    let repeats: Vec<_> = results
        .iter()
        .filter(|(s, _)| *s == jobs[0])
        .map(|(_, (p, _))| p.render())
        .collect();
    assert!(
        repeats.iter().all(|r| *r == first),
        "memoized responses are byte-identical"
    );

    let mut client = Client::connect(&addr).expect("connect");
    let stats = client.stats().expect("stats");
    println!(
        "\nservice: {} jobs, {} VM run(s), {} capture hit(s), {} memo hit(s), {} events replayed",
        stats
            .get("jobs_submitted")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        stats.get("vm_runs").and_then(Json::as_u64).unwrap_or(0),
        stats
            .get("capture_mem_hits")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        stats.get("result_hits").and_then(Json::as_u64).unwrap_or(0),
        stats
            .get("events_replayed")
            .and_then(Json::as_u64)
            .unwrap_or(0),
    );
    assert_eq!(
        stats.get("vm_runs").and_then(Json::as_u64),
        Some(1),
        "one capture serves all"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
    println!("server stopped cleanly");
}
