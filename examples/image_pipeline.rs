//! The second case study: profile the image pipeline (blur → Sobel →
//! threshold, DCT encode → decode) with tQUAD and watch its phases — the
//! tool generalises beyond the workload it was calibrated on.
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use tquad_suite::imgproc::{ImgApp, ImgConfig};
use tquad_suite::tquad::{figure_chart, Measure, PhaseDetector, TquadOptions, TquadTool};

fn main() {
    let app = ImgApp::build(ImgConfig::small());
    let mut vm = app.make_vm();
    let handle = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(2_000),
    )));
    let exit = vm.run(None).expect("pipeline runs");
    let profile = vm
        .detach_tool::<TquadTool>(handle)
        .expect("tool detaches")
        .into_profile();

    println!(
        "{} instructions; outputs: edges.pgm ({} B), coeffs.bin ({} B), recon.pgm ({} B)",
        exit.icount,
        vm.fs().file("edges.pgm").map(|f| f.len()).unwrap_or(0),
        vm.fs().file("coeffs.bin").map(|f| f.len()).unwrap_or(0),
        vm.fs().file("recon.pgm").map(|f| f.len()).unwrap_or(0),
    );
    println!("console (MSE): {}", vm.console().trim());

    let chart = figure_chart(
        &profile,
        &[
            "img_load",
            "conv3x3",
            "sobel_mag",
            "dct8x8",
            "idct8x8",
            "img_store",
        ],
        Measure::ReadIncl,
        96,
        None,
    );
    println!("\n{}", chart.render());

    let phases = PhaseDetector::default().detect_excluding(&profile, &["main", "img_store"]);
    println!("{} phases:", phases.len());
    for (i, ph) in phases.iter().enumerate() {
        let names: Vec<&str> = ph
            .kernels
            .iter()
            .map(|r| profile.kernels[r.idx()].name.as_str())
            .collect();
        println!(
            "  phase {} [{:>6}-{:<6}] {}",
            i + 1,
            ph.span.0,
            ph.span.1,
            names.join(", ")
        );
    }
}
