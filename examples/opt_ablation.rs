//! Compiler-optimisation ablation: the same wfs application compiled at
//! `-O0` (the fidelity default) and after constant folding (`-O1`-ish),
//! profiled both ways. Folding shrinks the instruction count and shifts
//! the stack/global traffic balance — demonstrating on our own substrate
//! why bytes-per-instruction numbers are compiler-sensitive while the
//! access-pattern *shapes* (who talks to whom, UnMA footprints, phases)
//! are not.
//!
//! ```sh
//! cargo run --release --example opt_ablation
//! ```

use tquad_suite::kernelc::{compile, fold_module};
use tquad_suite::tquad::{TquadOptions, TquadTool};
use tquad_suite::vm::Vm;
use tquad_suite::wfs::{build_module, WfsConfig, INPUT_WAV, OUTPUT_WAV};

fn main() {
    let config = WfsConfig::small();
    let module = build_module(&config);
    let app = tquad_suite::wfs::WfsApp::build(config);

    let mut results = Vec::new();
    for (label, m) in [
        ("-O0 (default)", module.clone()),
        ("-O1 (folded)", fold_module(&module)),
    ] {
        let compiled = compile(&m).expect("compiles");
        let mut vm = Vm::new(compiled.program).expect("loads");
        vm.fs_mut().add_file(INPUT_WAV, app.input_wav.clone());
        let h = vm.attach_tool(Box::new(TquadTool::new(
            TquadOptions::default().with_interval(2_000),
        )));
        let exit = vm.run(None).expect("runs");
        let profile = vm
            .detach_tool::<TquadTool>(h)
            .expect("tool detaches")
            .into_profile();

        let (mut incl, mut excl) = (0u64, 0u64);
        for k in &profile.kernels {
            let (ri, wi) = k.series.totals(true);
            let (re, we) = k.series.totals(false);
            incl += ri + wi;
            excl += re + we;
        }
        let out = vm.fs().file(OUTPUT_WAV).expect("output written").to_vec();
        println!(
            "{label:<16} {:>12} instr | traffic incl stack {:>12} B, excl {:>12} B | stack share {:>5.1} %",
            exit.icount,
            incl,
            excl,
            100.0 * (incl - excl) as f64 / incl as f64
        );
        results.push((exit.icount, out));
    }

    let (i0, out0) = &results[0];
    let (i1, out1) = &results[1];
    assert_eq!(out0, out1, "folding must not change the audio output");
    println!(
        "\nidentical output.wav from both builds; folding removed {:.1} % of the wfs \
         instructions — the hand-written kernels are already constant-lean, so the \
         profile is stable across optimisation levels.",
        100.0 * (1.0 - *i1 as f64 / *i0 as f64)
    );

    // A constant-heavy synthetic kernel, where folding bites hard.
    synthetic_comparison();
}

/// A filter-bank-style kernel full of foldable constant math (coefficient
/// expressions written out as literal arithmetic, constant-flag branches).
fn synthetic_comparison() {
    use tquad_suite::kernelc::dsl::*;
    use tquad_suite::kernelc::{ElemTy, Function, GlobalInit, Module};

    let mut m = Module::new("synth");
    m.global("out", ElemTy::F64, 4096, GlobalInit::Zero);
    m.func(Function::new("main").body(vec![for_(
        "i",
        ci(0),
        ci(4096),
        vec![
            // Coefficients spelled out as constant arithmetic, as generated
            // code often does.
            letf("c0", div(mul(cf(2.0), cf(std::f64::consts::PI)), cf(32.0))),
            letf("c1", add(mul(cf(0.5), cf(0.54)), cf(0.19))),
            letf("x", mul(i2f(v("i")), v("c0"))),
            if_else(
                eq(ci(1), ci(1)), // constant branch
                vec![stf(
                    ga("out"),
                    v("i"),
                    add(mul(sin(v("x")), v("c1")), mul(cf(3.0), cf(0.1))),
                )],
                vec![stf(ga("out"), v("i"), cf(0.0))],
            ),
        ],
    )]));

    for (label, module) in [
        ("synthetic -O0", m.clone()),
        ("synthetic -O1", fold_module(&m)),
    ] {
        let compiled = compile(&module).expect("compiles");
        let mut vm = Vm::new(compiled.program).expect("loads");
        let exit = vm.run(None).expect("runs");
        println!("{label:<16} {:>12} instr", exit.icount);
    }
}
