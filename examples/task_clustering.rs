//! The paper's future work, implemented: cluster the wfs kernels for
//! hardware/software partitioning so that "the intra-cluster communication
//! is maximized whereas the inter-cluster communication is minimized"
//! (§V/§VI), using QUAD's producer→consumer bindings and tQUAD's phases.
//!
//! ```sh
//! cargo run --release --example task_clustering
//! ```

use tquad_suite::quad::{cluster_by_communication, ClusterOptions, QuadOptions, QuadTool};
use tquad_suite::tquad::{PhaseDetector, TquadOptions, TquadTool};
use tquad_suite::wfs::{WfsApp, WfsConfig};

fn main() {
    let app = WfsApp::build(WfsConfig::small());
    let mut vm = app.make_vm();
    let q = vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
    let t = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(2_000),
    )));
    vm.run(None).expect("wfs runs");
    let quad = vm
        .detach_tool::<QuadTool>(q)
        .expect("tool detaches")
        .into_profile();
    let tquad = vm
        .detach_tool::<TquadTool>(t)
        .expect("tool detaches")
        .into_profile();

    let clustering = cluster_by_communication(
        &quad,
        ClusterOptions {
            max_cluster_size: 6,
            min_edge_bytes: 1024,
        },
    );

    println!(
        "task clustering over {} communication edges — {:.1} % of all traffic kept \
         intra-cluster ({} B cut)\n",
        quad.bindings.len(),
        100.0 * clustering.internal_fraction(),
        clustering.cut_bytes
    );

    let phases = PhaseDetector::default().detect(&tquad);
    let phase_of = |rtn: tquad_suite::isa::RoutineId| -> Option<usize> {
        phases.iter().position(|p| p.kernels.contains(&rtn))
    };

    for (i, c) in clustering.clusters.iter().enumerate() {
        println!(
            "cluster {} — {} B internal traffic:",
            i + 1,
            c.internal_bytes
        );
        for &k in &c.kernels {
            let name = &quad.rows[k.idx()].name;
            let ph = phase_of(k)
                .map(|p| format!("phase {}", p + 1))
                .unwrap_or_else(|| "no phase".into());
            println!("    {name:<24} ({ph})");
        }
    }

    // Co-phase check: clusters should mostly stay within one phase, since
    // "the kernels that are active at the same time interval are possibly
    // relevant (communicating)" (§IV).
    let mut same = 0;
    let mut cross = 0;
    for c in &clustering.clusters {
        let ps: Vec<Option<usize>> = c.kernels.iter().map(|&k| phase_of(k)).collect();
        if ps.windows(2).all(|w| w[0] == w[1]) {
            same += 1;
        } else {
            cross += 1;
        }
    }
    println!("\n{same} clusters lie within a single phase, {cross} span phases");
}
