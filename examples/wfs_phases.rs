//! The paper's headline result on the rebuilt case study: profile the
//! *hArtes wfs* application with tQUAD and identify its execution phases
//! (Table IV / §V "Phase identification").
//!
//! ```sh
//! cargo run --release --example wfs_phases [-- tiny|small|paper]
//! ```

use tquad_suite::tquad::{phase_table, PhaseDetector, TquadOptions, TquadTool};
use tquad_suite::wfs::{WfsApp, WfsConfig};

fn main() {
    let config = match std::env::args().nth(1).as_deref() {
        Some("tiny") => WfsConfig::tiny(),
        Some("paper") => WfsConfig::paper_scaled(),
        _ => WfsConfig::small(),
    };
    println!(
        "profiling hArtes wfs: {} speakers, {}-point FFT, {} chunks…\n",
        config.n_speakers, config.fft_size, config.n_chunks
    );

    let app = WfsApp::build(config);
    let mut vm = app.make_vm();
    let handle = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(2_000),
    )));
    let exit = vm.run(None).expect("wfs runs");
    let profile = vm
        .detach_tool::<TquadTool>(handle)
        .expect("tool detaches")
        .into_profile();

    println!(
        "{} instructions in {} slices of {}\n",
        exit.icount,
        profile.n_slices(),
        profile.interval
    );

    let phases = PhaseDetector::default().detect(&profile);
    println!(
        "{} phases identified (the paper identifies 5: initialization, wave load, \
         wave propagation, WFS main processing, wave save)\n",
        phases.len()
    );
    for (i, phase) in phases.iter().enumerate() {
        let names: Vec<&str> = phase
            .kernels
            .iter()
            .map(|r| profile.kernels[r.idx()].name.as_str())
            .collect();
        println!(
            "phase {} [{:>6}-{:<6}] {:>7.3}%  {}",
            i + 1,
            phase.span.0,
            phase.span.1,
            phase.span_pct(profile.n_slices()),
            names.join(", ")
        );
    }

    println!("\n{}", phase_table(&profile, &phases).render());
}
