//! Producer→consumer analysis with QUAD (the companion tool): who feeds
//! whom, with how many bytes, over how many unique addresses — and the QDU
//! graph as Graphviz DOT.
//!
//! ```sh
//! cargo run --release --example quad_bindings
//! ```

use tquad_suite::quad::{qdu_graph, QuadOptions, QuadTool};
use tquad_suite::report::{n, Align, Table};
use tquad_suite::wfs::{WfsApp, WfsConfig};

fn main() {
    let app = WfsApp::build(WfsConfig::small());
    let mut vm = app.make_vm();
    let handle = vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
    vm.run(None).expect("wfs runs");
    let profile = vm
        .detach_tool::<QuadTool>(handle)
        .expect("tool detaches")
        .into_profile();

    // Per-kernel IN/OUT summary (Table II columns).
    let mut t = Table::new("Data produced/consumed (stack accesses included)")
        .col("kernel", Align::Left)
        .col("IN", Align::Right)
        .col("IN UnMA", Align::Right)
        .col("OUT", Align::Right)
        .col("OUT UnMA", Align::Right);
    for r in profile.active_rows() {
        t.row(vec![
            r.name.clone(),
            n(r.in_bytes),
            n(r.in_unma),
            n(r.out_bytes),
            n(r.out_unma),
        ]);
    }
    println!("{}", t.render());

    // The strongest data-flow edges (what the QDU graph shows).
    let mut edges = profile.bindings.clone();
    edges.sort_by_key(|b| std::cmp::Reverse(b.bytes));
    println!("strongest producer → consumer bindings:");
    for b in edges.iter().take(12) {
        println!(
            "  {:>24} → {:<24} {:>14} B over {:>10} unique addresses",
            profile.rows[b.producer.idx()].name,
            profile.rows[b.consumer.idx()].name,
            n(b.bytes),
            n(b.unma)
        );
    }

    let dot = qdu_graph(&profile, 4096).render();
    std::fs::write("qdu.dot", &dot).expect("write qdu.dot");
    println!(
        "\nQDU graph with {} edges written to qdu.dot (render with `dot -Tsvg`)",
        dot.matches("->").count()
    );
}
