//! Instrumentation overhead (§V.A): how much slower the application runs
//! under each analysis tool, and what Pin's decode-once code cache buys.
//!
//! ```sh
//! cargo run --release --example overhead
//! ```

use std::time::Instant;
use tquad_suite::gprof::{GprofOptions, GprofTool};
use tquad_suite::quad::{QuadOptions, QuadTool};
use tquad_suite::tquad::{TquadOptions, TquadTool};
use tquad_suite::wfs::{WfsApp, WfsConfig};

fn main() {
    let app = WfsApp::build(WfsConfig::small());

    let time = |label: &str, attach: &dyn Fn(&mut tquad_suite::vm::Vm), cache: bool| -> f64 {
        let mut vm = app.make_vm();
        vm.set_cache_enabled(cache);
        attach(&mut vm);
        let t0 = Instant::now();
        vm.run(None).expect("run");
        let dt = t0.elapsed().as_secs_f64();
        println!("{label:<40} {dt:>8.3} s");
        dt
    };

    let bare = time("bare VM (native baseline)", &|_| {}, true);
    let tq = time(
        "tquad (interval 20k)",
        &|vm| {
            vm.attach_tool(Box::new(TquadTool::new(
                TquadOptions::default().with_interval(20_000),
            )));
        },
        true,
    );
    let tq_fine = time(
        "tquad (interval 500 — fine slices)",
        &|vm| {
            vm.attach_tool(Box::new(TquadTool::new(
                TquadOptions::default().with_interval(500),
            )));
        },
        true,
    );
    let gp = time(
        "gprof-sim (sampling)",
        &|vm| {
            vm.attach_tool(Box::new(GprofTool::new(GprofOptions::default())));
        },
        true,
    );
    let qd = time(
        "quad (shadow memory)",
        &|vm| {
            vm.attach_tool(Box::new(QuadTool::new(QuadOptions::default())));
        },
        true,
    );
    let nc = time(
        "tquad WITHOUT the code cache",
        &|vm| {
            vm.attach_tool(Box::new(TquadTool::new(
                TquadOptions::default().with_interval(20_000),
            )));
        },
        false,
    );

    println!();
    for (label, t) in [
        ("tquad", tq),
        ("tquad fine", tq_fine),
        ("gprof-sim", gp),
        ("quad", qd),
        ("tquad, no code cache", nc),
    ] {
        println!("{label:<24} slowdown {:.2}x", t / bare);
    }
    println!(
        "\npaper: \"a slowdown … ranging from 37.2 X to 68.95 X compared to native \
         execution\" — their baseline is native x86; ours is the bare interpreter \
         (see EXPERIMENTS.md for the mapping)."
    );
}
