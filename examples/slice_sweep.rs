//! The time-slice interval trade-off (§V.B): run tQUAD at several
//! granularities and watch detail appear — the paper's contrast between
//! Fig. 6 (coarse, 64 slices) and Fig. 7 (fine, 255 slices).
//!
//! ```sh
//! cargo run --release --example slice_sweep
//! ```

use tquad_suite::tquad::{figure_chart, Measure, TquadOptions, TquadTool};
use tquad_suite::wfs::{WfsApp, WfsConfig};

fn main() {
    let app = WfsApp::build(WfsConfig::small());
    let (_, bare) = app.run_bare().expect("sizing run");

    for slices in [16u64, 64, 256] {
        let interval = (bare.icount / slices).max(1);
        let mut vm = app.make_vm();
        let handle = vm.attach_tool(Box::new(TquadTool::new(
            TquadOptions::default().with_interval(interval),
        )));
        vm.run(None).expect("wfs runs");
        let profile = vm
            .detach_tool::<TquadTool>(handle)
            .expect("tool detaches")
            .into_profile();

        println!("── interval = {interval} instructions ({slices} slices) ──");
        let chart = figure_chart(
            &profile,
            &["fft1d", "AudioIo_setFrames", "wav_store"],
            Measure::ReadIncl,
            72,
            None,
        );
        println!("{}", chart.render());

        let sf = profile.kernel("AudioIo_setFrames").expect("kernel exists");
        if let Some(stats) = profile.stats(sf, true) {
            println!(
                "AudioIo_setFrames measured peak: {:.2} B/instr (finer slices → less averaging)\n",
                stats.max_total_bpi
            );
        }
    }
    println!(
        "\"Time slice interval is a key parameter which adjusts the detailing degree \
         of the extracted memory bandwidth usage information.\" (§IV)"
    );
}
