//! Quickstart: compile a small program in the kernel DSL, run it under the
//! tQUAD profiler, and print its temporal memory bandwidth usage.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tquad_suite::kernelc::dsl::*;
use tquad_suite::kernelc::{compile, ElemTy, Function, GlobalInit, Module};
use tquad_suite::tquad::{figure_chart, Measure, TquadOptions, TquadTool};
use tquad_suite::vm::Vm;

fn main() {
    // A toy two-kernel program: `producer` fills a buffer, `consumer` sums
    // it — with enough iterations to spread across time slices.
    let mut module = Module::new("quickstart");
    module.global("buf", ElemTy::F64, 4096, GlobalInit::Zero);
    module.global("out", ElemTy::F64, 1, GlobalInit::Zero);

    module.func(Function::new("producer").body(vec![for_(
        "i",
        ci(0),
        ci(4096),
        vec![stf(ga("buf"), v("i"), mul(i2f(v("i")), cf(0.5)))],
    )]));

    module.func(Function::new("consumer").body(vec![
        letf("acc", cf(0.0)),
        for_(
            "i",
            ci(0),
            ci(4096),
            vec![set("acc", add(v("acc"), ldf(ga("buf"), v("i"))))],
        ),
        stf(ga("out"), ci(0), v("acc")),
    ]));

    module.func(Function::new("main").body(vec![
        call("producer", vec![]),
        call("consumer", vec![]),
        call("producer", vec![]), // second burst, to make the timeline interesting
    ]));

    // Compile to the VM ISA and attach the tQUAD tool.
    let compiled = compile(&module).expect("module compiles");
    let mut vm = Vm::new(compiled.program).expect("program loads");
    let handle = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(5_000),
    )));

    let exit = vm.run(None).expect("program runs");
    println!("executed {} instructions\n", exit.icount);

    let profile = vm
        .detach_tool::<TquadTool>(handle)
        .expect("tool detaches")
        .into_profile();

    // Temporal view: who uses memory bandwidth, when.
    let chart = figure_chart(
        &profile,
        &["producer", "consumer"],
        Measure::WriteIncl,
        72,
        None,
    );
    println!("{}", chart.render());
    let chart = figure_chart(
        &profile,
        &["producer", "consumer"],
        Measure::ReadIncl,
        72,
        None,
    );
    println!("{}", chart.render());

    // Per-kernel statistics (the Table IV columns).
    for name in ["producer", "consumer"] {
        let k = profile.kernel(name).expect("kernel exists");
        let stats = profile.stats(k, true).expect("kernel was active");
        println!(
            "{name}: active in {} slices, avg read {:.3} B/instr, avg write {:.3} B/instr, peak {:.3} B/instr",
            stats.activity_span, stats.avg_read_bpi, stats.avg_write_bpi, stats.max_total_bpi
        );
    }
}
