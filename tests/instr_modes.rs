//! Cross-crate contracts of the reduced-instrumentation modes (`--instr`):
//! exactness where exactness is promised, bounded error where it is not.
//! The documented bounds live in `docs/ACCURACY.md`; the workload-scale
//! measurements behind them in `benches/instr_accuracy.rs`.

use tquad_suite::gprof::{GprofOptions, GprofTool};
use tquad_suite::kernelc::dsl::*;
use tquad_suite::kernelc::{compile, ElemTy, Function, GlobalInit, Module};
use tquad_suite::tquad::{TquadOptions, TquadProfile, TquadTool};
use tquad_suite::trace::TraceRecorder;
use tquad_suite::vm::{InstrEmulator, InstrMode, Vm};
use tquad_suite::wfs::{WfsApp, WfsConfig};

/// Documented max per-kernel mean-bandwidth error bound for sampling
/// (docs/ACCURACY.md; measured headroom in `results/instr_accuracy.tsv`).
const SAMPLE_ERR_BOUND: f64 = 0.25;

fn tquad_profile(mut vm: Vm, interval: u64, mode: Option<&str>) -> TquadProfile {
    if let Some(spec) = mode {
        vm.set_instr_mode(InstrMode::parse(spec).expect("spec parses"))
            .expect("mode accepted");
    }
    let h = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(interval),
    )));
    vm.run(None).expect("runs");
    vm.detach_tool::<TquadTool>(h)
        .expect("tool detaches")
        .into_profile()
}

#[test]
fn all_routines_filter_records_the_byte_identical_capture() {
    let app = WfsApp::build(WfsConfig::tiny());
    let digest_under = |mode: Option<&str>| {
        let mut vm = app.make_vm();
        if let Some(spec) = mode {
            vm.set_instr_mode(InstrMode::parse(spec).expect("spec parses"))
                .expect("mode accepted");
        }
        let h = vm.attach_tool(Box::new(TraceRecorder::new()));
        vm.run(None).expect("runs");
        vm.detach_tool::<TraceRecorder>(h)
            .expect("recorder detaches")
            .into_trace()
            .digest()
    };
    let full = digest_under(None);
    assert_eq!(
        digest_under(Some("filter:*")),
        full,
        "filter:* must be indistinguishable from full instrumentation"
    );
    // A real exclusion is NOT a no-op — otherwise the check above proves
    // nothing.
    assert_ne!(digest_under(Some("filter:!fft1d")), full);
}

/// The gate is a pure function of the instrumented event stream, so
/// emulating a reduced mode over a full capture must land on the exact
/// profile a live gated run produces — the contract that lets tq-profd
/// keep one shared full capture per program and emulate every reduced
/// job variant at replay time.
#[test]
fn live_gated_run_matches_gate_emulation_over_the_full_capture() {
    let app = WfsApp::build(WfsConfig::tiny());
    let trace = {
        let mut vm = app.make_vm();
        let h = vm.attach_tool(Box::new(TraceRecorder::new()));
        vm.run(None).expect("runs");
        vm.detach_tool::<TraceRecorder>(h)
            .expect("recorder detaches")
            .into_trace()
    };
    for spec in ["sample:3/2000@1", "converge:0.1,4/2000"] {
        let live = tquad_profile(app.make_vm(), 2000, Some(spec));
        let mode = InstrMode::parse(spec).expect("spec parses");
        let canonical = mode.to_string();
        let mut emu = InstrEmulator::new(
            TquadTool::new(TquadOptions::default().with_interval(2000)),
            mode,
        );
        trace.replay(&mut emu).expect("replays");
        let emulated = emu.finish().expect("emulation succeeds").into_profile();
        assert_eq!(live, emulated, "{spec}: live gating != emulated gating");
        assert_eq!(
            live.instr.as_ref().map(|n| n.spec.as_str()),
            Some(canonical.as_str()),
            "{spec}: recon note must carry the canonical spec"
        );
    }
}

/// xorshift-free deterministic PRNG (splitmix64) for the randomized
/// program generator below.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A random multi-kernel streaming program: 2–4 kernels with random loop
/// lengths and read/write mixes, called in a random repeating order.
fn random_module(rng: &mut Rng) -> Vm {
    let mut m = Module::new("random_stream");
    m.global("buf", ElemTy::F64, 256, GlobalInit::Zero);
    m.global("out", ElemTy::F64, 1, GlobalInit::Zero);
    let n_kernels = rng.range(2, 5);
    let mut names = Vec::new();
    for k in 0..n_kernels {
        let name = format!("kern{k}");
        let len = rng.range(16, 96) as i64;
        let body = match rng.range(0, 3) {
            0 => vec![for_(
                "i",
                ci(0),
                ci(len),
                vec![stf(ga("buf"), v("i"), i2f(v("i")))],
            )],
            1 => vec![for_(
                "i",
                ci(0),
                ci(len),
                vec![stf(
                    ga("buf"),
                    v("i"),
                    mul(ldf(ga("buf"), v("i")), cf(1.25)),
                )],
            )],
            _ => vec![
                letf("acc", cf(0.0)),
                for_(
                    "i",
                    ci(0),
                    ci(len),
                    vec![set("acc", add(v("acc"), ldf(ga("buf"), v("i"))))],
                ),
                stf(ga("out"), ci(0), v("acc")),
            ],
        };
        m.func(Function::new(name.as_str()).body(body));
        names.push(name);
    }
    let rounds = rng.range(150, 400) as i64;
    let calls_per_round = rng.range(2, 5);
    let round: Vec<_> = (0..calls_per_round)
        .map(|_| call(&names[rng.range(0, n_kernels) as usize], vec![]))
        .collect();
    m.func(Function::new("main").body(vec![for_("r", ci(0), ci(rounds), round)]));
    let compiled = compile(&m).expect("random module compiles");
    Vm::new(compiled.program).expect("random module loads")
}

#[test]
fn sampling_error_stays_within_the_declared_bound_on_random_programs() {
    for seed in 0..6u64 {
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1);
        let full = tquad_profile(random_module(&mut rng), 5000, None);
        let mut rng = Rng(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1);
        let sampled = tquad_profile(
            random_module(&mut rng),
            5000,
            Some(&format!("sample:4/5000@{seed}")),
        );
        let note = sampled.instr.as_ref().expect("recon note present");
        assert!(
            note.coverage_ppm <= 1_000_000,
            "coverage is a fraction of the run"
        );

        // Max relative error of per-kernel mean bandwidth (Table IV avg
        // read+write B/instr over active slices), over kernels carrying
        // at least 1% of full-run traffic — the docs/ACCURACY.md metric.
        let grand: u64 = full
            .kernels
            .iter()
            .map(|k| {
                let (r, w) = k.series.totals(true);
                r + w
            })
            .sum();
        for fk in &full.kernels {
            let (r, w) = fk.series.totals(true);
            if ((r + w) as f64) < 0.01 * grand as f64 {
                continue;
            }
            let Some(fs) = full.stats(fk, true) else {
                continue;
            };
            let f_bpi = fs.avg_read_bpi + fs.avg_write_bpi;
            let r_bpi = sampled
                .kernel(&fk.name)
                .and_then(|rk| sampled.stats(rk, true))
                .map(|rs| rs.avg_read_bpi + rs.avg_write_bpi)
                .unwrap_or(0.0);
            let err = (r_bpi - f_bpi).abs() / f_bpi;
            assert!(
                err <= SAMPLE_ERR_BOUND,
                "seed {seed}, kernel {}: bandwidth error {err:.3} exceeds \
                 the documented {SAMPLE_ERR_BOUND} bound",
                fk.name
            );
        }
    }
}

/// A workload whose per-slice profile never stops shifting: two kernels
/// with very different bandwidth take turns, each burst spanning about
/// two gating slices, so no routine's profile is stable for the four
/// consecutive slices convergence would need.
fn phase_shifting_module() -> Vm {
    let mut m = Module::new("phase_shift");
    m.global("big", ElemTy::F64, 512, GlobalInit::Zero);
    m.global("out", ElemTy::F64, 1, GlobalInit::Zero);
    m.func(Function::new("burst_write").body(vec![for_(
        "i",
        ci(0),
        ci(512),
        vec![stf(ga("big"), v("i"), i2f(v("i")))],
    )]));
    m.func(Function::new("burst_read").body(vec![
        letf("acc", cf(0.0)),
        for_(
            "i",
            ci(0),
            ci(512),
            vec![set("acc", add(v("acc"), ldf(ga("big"), v("i"))))],
        ),
        stf(ga("out"), ci(0), v("acc")),
    ]));
    m.func(Function::new("main").body(vec![for_(
        "r",
        ci(0),
        ci(40),
        vec![call("burst_write", vec![]), call("burst_read", vec![])],
    )]));
    let compiled = compile(&m).expect("phase module compiles");
    Vm::new(compiled.program).expect("phase module loads")
}

#[test]
fn convergence_never_fires_on_a_phase_shifting_workload() {
    let full = tquad_profile(phase_shifting_module(), 2000, None);
    let mut vm = phase_shifting_module();
    vm.set_instr_mode(InstrMode::parse("converge:0.02,4/2000").expect("spec parses"))
        .expect("mode accepted");
    let h = vm.attach_tool(Box::new(TquadTool::new(
        TquadOptions::default().with_interval(2000),
    )));
    vm.run(None).expect("runs");
    let info = vm.instr_info().expect("reduced mode records info").clone();
    assert!(
        info.gaps.is_empty(),
        "convergence gated a phase-shifting workload: {:?}",
        info.gaps
    );
    let gated = vm
        .detach_tool::<TquadTool>(h)
        .expect("tool detaches")
        .into_profile();
    let note = gated.instr.as_ref().expect("recon note present");
    assert_eq!(note.coverage_ppm, 1_000_000, "nothing was gated");
    assert_eq!(
        gated.kernels, full.kernels,
        "with no gaps the reconstruction must be the identity"
    );
}

/// gprof only consumes routine-enter/ret/tick events, and slice gating
/// only drops memory events — so sample and converge leave the gprof
/// profile byte-identical while still cutting tquad's event volume.
#[test]
fn gprof_profile_is_exact_under_slice_gating() {
    let app = WfsApp::build(WfsConfig::tiny());
    let profile_under = |mode: Option<&str>| {
        let mut vm = app.make_vm();
        if let Some(spec) = mode {
            vm.set_instr_mode(InstrMode::parse(spec).expect("spec parses"))
                .expect("mode accepted");
        }
        let h = vm.attach_tool(Box::new(GprofTool::new(GprofOptions::default())));
        vm.run(None).expect("runs");
        vm.detach_tool::<GprofTool>(h)
            .expect("tool detaches")
            .into_profile()
    };
    let full = profile_under(None);
    assert_eq!(profile_under(Some("sample:4/2000@3")), full);
    assert_eq!(profile_under(Some("converge:0.05,4/2000")), full);
}
