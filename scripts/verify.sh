#!/usr/bin/env sh
# Tier-1 verification gate (see ROADMAP.md). Everything runs offline: the
# workspace has zero external crates, so no registry access is needed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "verify: OK"
