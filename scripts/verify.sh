#!/usr/bin/env sh
# Tier-1 verification gate (see ROADMAP.md). Everything runs offline: the
# workspace has zero external crates, so no registry access is needed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo doc --no-deps --offline (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --offline

echo "==> sharded replay determinism smoke (tquad/quad/gprof, 4 shards vs sequential)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
for tool in tquad quad gprof; do
    ./target/release/tq "$tool" --app img --scale tiny --jobs 1 > "$smoke_dir/$tool.seq"
    ./target/release/tq "$tool" --app img --scale tiny --jobs 4 > "$smoke_dir/$tool.sharded"
    diff "$smoke_dir/$tool.seq" "$smoke_dir/$tool.sharded" \
        || { echo "verify: FAIL ($tool sharded output diverged)"; exit 1; }
done
if ./target/release/tq tquad --app img --scale tiny --interval 0 > /dev/null 2>&1; then
    echo "verify: FAIL (--interval 0 must be rejected)"; exit 1
fi

echo "==> vm-opt smoke: off and trace captures are byte-identical"
./target/release/tq capture --app wfs --scale tiny --vm-opt off \
    --out "$smoke_dir/cap.off" > /dev/null
./target/release/tq capture --app wfs --scale tiny --vm-opt trace \
    --out "$smoke_dir/cap.trace" > /dev/null 2> "$smoke_dir/cap.trace.log"
cmp "$smoke_dir/cap.off" "$smoke_dir/cap.trace" \
    || { echo "verify: FAIL (vm-opt trace capture diverged from off)"; exit 1; }
grep -q "traces recorded" "$smoke_dir/cap.trace.log" \
    || { echo "verify: FAIL (trace capture reported no trace stats)"; exit 1; }

echo "==> vm_jit bench guard (trace dispatch >= 1.5x off, identical digests)"
TQ_BENCH_ITERS=3 cargo bench -q --offline -p tq-bench --bench vm_jit \
    || { echo "verify: FAIL (vm_jit speedup/fidelity guard)"; exit 1; }

echo "==> obs smoke: --trace-out exports a valid Chrome trace"
./target/release/tq tquad --app img --scale tiny --jobs 2 \
    --trace-out "$smoke_dir/replay.trace.json" > /dev/null 2>&1
./target/release/check_trace "$smoke_dir/replay.trace.json" \
    capture decode shard-0 shard-1 merge \
    || { echo "verify: FAIL (trace-out export invalid)"; exit 1; }
./target/release/tq tquad --app img --scale tiny --jobs 2 --no-obs \
    --trace-out "$smoke_dir/empty.trace.json" > /dev/null 2>&1
./target/release/check_trace "$smoke_dir/empty.trace.json" \
    || { echo "verify: FAIL (--no-obs trace must still be valid JSON)"; exit 1; }

echo "==> obs smoke: tq serve answers a metrics request"
./target/release/tq serve --addr 127.0.0.1:0 --workers 1 \
    > "$smoke_dir/serve.out" 2> /dev/null &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^tq-profd listening on //p' "$smoke_dir/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "verify: FAIL (tq serve did not come up)"; exit 1; }
./target/release/tq submit --addr "$addr" --tool gprof --scale tiny > /dev/null 2>&1 \
    || { echo "verify: FAIL (submit against smoke server)"; exit 1; }
./target/release/tq submit --addr "$addr" --metrics > "$smoke_dir/metrics.txt" 2>&1 \
    || { echo "verify: FAIL (metrics request)"; exit 1; }
for needle in \
    "# TYPE tq_profd_jobs_submitted_total counter" \
    "# TYPE tq_profd_queue_depth gauge" \
    "# TYPE tq_profd_job_micros histogram" \
    "# TYPE tq_vm_blocks_fused_total counter" \
    "# TYPE tq_vm_traces_recorded_total counter" \
    "# TYPE tq_vm_trace_instr_share_bp gauge"; do
    grep -q "$needle" "$smoke_dir/metrics.txt" \
        || { echo "verify: FAIL (metrics missing: $needle)"; exit 1; }
done
./target/release/tq submit --addr "$addr" --shutdown > /dev/null 2>&1 || true
wait "$serve_pid" 2> /dev/null || true

echo "verify: OK"
