#!/usr/bin/env sh
# Tier-1 verification gate (see ROADMAP.md). Everything runs offline: the
# workspace has zero external crates, so no registry access is needed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo doc --no-deps --offline (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --offline

echo "==> sharded replay determinism smoke (tquad/quad/gprof, 4 shards vs sequential)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
for tool in tquad quad gprof; do
    ./target/release/tq "$tool" --app img --scale tiny --jobs 1 > "$smoke_dir/$tool.seq"
    ./target/release/tq "$tool" --app img --scale tiny --jobs 4 > "$smoke_dir/$tool.sharded"
    diff "$smoke_dir/$tool.seq" "$smoke_dir/$tool.sharded" \
        || { echo "verify: FAIL ($tool sharded output diverged)"; exit 1; }
done
if ./target/release/tq tquad --app img --scale tiny --interval 0 > /dev/null 2>&1; then
    echo "verify: FAIL (--interval 0 must be rejected)"; exit 1
fi

echo "==> vm-opt smoke: off and trace captures are byte-identical"
./target/release/tq capture --app wfs --scale tiny --vm-opt off \
    --out "$smoke_dir/cap.off" > /dev/null
./target/release/tq capture --app wfs --scale tiny --vm-opt trace \
    --out "$smoke_dir/cap.trace" > /dev/null 2> "$smoke_dir/cap.trace.log"
cmp "$smoke_dir/cap.off" "$smoke_dir/cap.trace" \
    || { echo "verify: FAIL (vm-opt trace capture diverged from off)"; exit 1; }
grep -q "traces recorded" "$smoke_dir/cap.trace.log" \
    || { echo "verify: FAIL (trace capture reported no trace stats)"; exit 1; }

echo "==> TQTRACE3 smoke: columnar capture <= 0.7x v2, identical profiles via the streaming reader"
./target/release/tq capture --app wfs --scale tiny --format v2 \
    --out "$smoke_dir/cap.v2" > /dev/null
./target/release/tq capture --app wfs --scale tiny --format v3 \
    --out "$smoke_dir/cap.v3" > /dev/null
v2_bytes=$(wc -c < "$smoke_dir/cap.v2")
v3_bytes=$(wc -c < "$smoke_dir/cap.v3")
[ "$((v3_bytes * 10))" -le "$((v2_bytes * 7))" ] \
    || { echo "verify: FAIL (v3 capture $v3_bytes bytes > 0.7x v2 $v2_bytes bytes)"; exit 1; }
for tool in tquad quad gprof; do
    ./target/release/tq "$tool" --capture "$smoke_dir/cap.v2" > "$smoke_dir/$tool.capv2"
    ./target/release/tq "$tool" --capture "$smoke_dir/cap.v3" > "$smoke_dir/$tool.capv3"
    diff "$smoke_dir/$tool.capv2" "$smoke_dir/$tool.capv3" \
        || { echo "verify: FAIL ($tool profile diverged between v2 and v3 captures)"; exit 1; }
done
./target/release/tq tquad --capture "$smoke_dir/cap.v3" --jobs 2 \
    --trace-out "$smoke_dir/streaming.trace.json" \
    > "$smoke_dir/tquad.capv3.j2" 2> /dev/null
diff "$smoke_dir/tquad.capv3" "$smoke_dir/tquad.capv3.j2" \
    || { echo "verify: FAIL (sharded streaming replay diverged from sequential)"; exit 1; }
./target/release/check_trace "$smoke_dir/streaming.trace.json" \
    replay_sharded_streaming shard-0 shard-1 \
    || { echo "verify: FAIL (streaming spans missing — the lazy reader never fired)"; exit 1; }

# Timing-ratio guards measure wall-clock speedups on a shared single-core
# box; a background-load burst can sink a run that passes when quiet. Give
# each guard a few attempts — the floors themselves stay untouched.
bench_guard() {
    _bench="$1"; _iters="$2"; _attempts=3
    while :; do
        TQ_BENCH_ITERS="$_iters" cargo bench -q --offline -p tq-bench --bench "$_bench" && return 0
        _attempts=$((_attempts - 1))
        [ "$_attempts" -gt 0 ] || return 1
        echo "==> $_bench guard failed (noisy box?), retrying ($_attempts attempt(s) left)"
        sleep 2
    done
}

echo "==> vm_jit bench guard (trace dispatch >= 1.25x off, identical digests)"
bench_guard vm_jit 5 \
    || { echo "verify: FAIL (vm_jit speedup/fidelity guard)"; exit 1; }

echo "==> obs smoke: --trace-out exports a valid Chrome trace"
./target/release/tq tquad --app img --scale tiny --jobs 2 \
    --trace-out "$smoke_dir/replay.trace.json" > /dev/null 2>&1
./target/release/check_trace "$smoke_dir/replay.trace.json" \
    capture decode shard-0 shard-1 merge \
    || { echo "verify: FAIL (trace-out export invalid)"; exit 1; }
./target/release/tq tquad --app img --scale tiny --jobs 2 --no-obs \
    --trace-out "$smoke_dir/empty.trace.json" > /dev/null 2>&1
./target/release/check_trace "$smoke_dir/empty.trace.json" \
    || { echo "verify: FAIL (--no-obs trace must still be valid JSON)"; exit 1; }

echo "==> obs smoke: tq serve answers a metrics request"
./target/release/tq serve --addr 127.0.0.1:0 --workers 1 \
    > "$smoke_dir/serve.out" 2> /dev/null &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^tq-profd listening on //p' "$smoke_dir/serve.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "verify: FAIL (tq serve did not come up)"; exit 1; }
./target/release/tq submit --addr "$addr" --tool gprof --scale tiny > /dev/null 2>&1 \
    || { echo "verify: FAIL (submit against smoke server)"; exit 1; }
./target/release/tq submit --addr "$addr" --metrics > "$smoke_dir/metrics.txt" 2>&1 \
    || { echo "verify: FAIL (metrics request)"; exit 1; }
for needle in \
    "# TYPE tq_profd_jobs_submitted_total counter" \
    "# TYPE tq_profd_queue_depth gauge" \
    "# TYPE tq_profd_job_micros histogram" \
    "# TYPE tq_vm_blocks_fused_total counter" \
    "# TYPE tq_vm_traces_recorded_total counter" \
    "# TYPE tq_vm_trace_instr_share_bp gauge"; do
    grep -q "$needle" "$smoke_dir/metrics.txt" \
        || { echo "verify: FAIL (metrics missing: $needle)"; exit 1; }
done
./target/release/tq submit --addr "$addr" --shutdown > /dev/null 2>&1 || true
wait "$serve_pid" 2> /dev/null || true

echo "==> fleet smoke: 2-node fleet shards the capture cache (one recording fleet-wide)"
# Find two free loopback ports: bind ephemeral throwaway servers, note
# their addresses, shut them down. The fleet roster must be fixed before
# either real member starts, which rules out port 0.
./target/release/tq serve --addr 127.0.0.1:0 --workers 1 \
    > "$smoke_dir/probe1.out" 2> /dev/null &
probe1_pid=$!
./target/release/tq serve --addr 127.0.0.1:0 --workers 1 \
    > "$smoke_dir/probe2.out" 2> /dev/null &
probe2_pid=$!
fleet_a=""
fleet_b=""
for _ in $(seq 1 50); do
    fleet_a=$(sed -n 's/^tq-profd listening on //p' "$smoke_dir/probe1.out")
    fleet_b=$(sed -n 's/^tq-profd listening on //p' "$smoke_dir/probe2.out")
    [ -n "$fleet_a" ] && [ -n "$fleet_b" ] && break
    sleep 0.1
done
[ -n "$fleet_a" ] && [ -n "$fleet_b" ] \
    || { echo "verify: FAIL (fleet port probes did not come up)"; exit 1; }
./target/release/tq submit --addr "$fleet_a" --shutdown > /dev/null 2>&1 || true
./target/release/tq submit --addr "$fleet_b" --shutdown > /dev/null 2>&1 || true
wait "$probe1_pid" 2> /dev/null || true
wait "$probe2_pid" 2> /dev/null || true

./target/release/tq serve --addr "$fleet_a" --workers 1 --peers "$fleet_b" \
    > /dev/null 2>&1 &
fleet_a_pid=$!
./target/release/tq serve --addr "$fleet_b" --workers 1 --peers "$fleet_a" \
    > /dev/null 2>&1 &
fleet_b_pid=$!
up=""
for _ in $(seq 1 50); do
    if ./target/release/tq submit --addr "$fleet_a" --ping > /dev/null 2>&1 \
        && ./target/release/tq submit --addr "$fleet_b" --ping > /dev/null 2>&1; then
        up=yes
        break
    fi
    sleep 0.1
done
[ -n "$up" ] || { echo "verify: FAIL (fleet members did not come up)"; exit 1; }

# Every member answers `route` with the same deterministic ring owner.
owner=$(./target/release/tq submit --addr "$fleet_a" --route --app wfs --scale tiny \
    2> /dev/null | sed -n 's/.*"owner":"\([^"]*\)".*/\1/p')
case "$owner" in
    "$fleet_a") non_owner=$fleet_b ;;
    "$fleet_b") non_owner=$fleet_a ;;
    *) echo "verify: FAIL (route owner '$owner' is not a fleet member)"; exit 1 ;;
esac

# Submit to the NON-owner: it must serve the job by peeking the owner's
# cache (which records on demand), never by recording locally.
./target/release/tq submit --addr "$non_owner" --app wfs --scale tiny \
    > "$smoke_dir/fleet.profile" 2> /dev/null \
    || { echo "verify: FAIL (fleet submit to non-owner)"; exit 1; }
owner_stats=$(./target/release/tq submit --addr "$owner" --stats 2> /dev/null)
non_owner_stats=$(./target/release/tq submit --addr "$non_owner" --stats 2> /dev/null)
printf '%s' "$owner_stats" | grep -q '"cache_misses":1' \
    || { echo "verify: FAIL (owner must hold the fleet's one recording)"; exit 1; }
printf '%s' "$owner_stats" | grep -q '"peek_serves":1' \
    || { echo "verify: FAIL (owner never served the peek)"; exit 1; }
printf '%s' "$non_owner_stats" | grep -q '"cache_misses":0' \
    || { echo "verify: FAIL (non-owner recorded instead of peeking)"; exit 1; }
printf '%s' "$non_owner_stats" | grep -q '"peek_fetches":1' \
    || { echo "verify: FAIL (non-owner never fetched from the owner)"; exit 1; }
printf '%s' "$non_owner_stats" | grep -q '"role":"fleet"' \
    || { echo "verify: FAIL (fleet member reports wrong role)"; exit 1; }

echo "==> fleet telemetry smoke: merged trace correlates hops, merged metrics carry peer labels"
# The routed submit above tagged spans on BOTH peers (submit + job on the
# non-owner, peek-serve on the owner) with one client-minted job_id. The
# merged trace must show that id under two distinct pid tracks, with each
# peer's clock offset estimated from the scrape round-trip.
./target/release/tq fleet-trace --peers "$fleet_a,$fleet_b" \
    --out "$smoke_dir/fleet.trace.json" > /dev/null 2> /dev/null \
    || { echo "verify: FAIL (fleet-trace scrape)"; exit 1; }
./target/release/check_fleet_trace "$smoke_dir/fleet.trace.json" 2 \
    || { echo "verify: FAIL (merged trace lacks a cross-peer job_id)"; exit 1; }
./target/release/tq fleet-status --peers "$fleet_a,$fleet_b" \
    > "$smoke_dir/fleet_status.txt" 2> /dev/null \
    || { echo "verify: FAIL (fleet-status)"; exit 1; }
grep -q "$fleet_a" "$smoke_dir/fleet_status.txt" \
    && grep -q "$fleet_b" "$smoke_dir/fleet_status.txt" \
    || { echo "verify: FAIL (fleet-status table missing a peer row)"; exit 1; }
./target/release/tq fleet-status --peers "$fleet_a,$fleet_b" --metrics \
    > "$smoke_dir/fleet_metrics.txt" 2> /dev/null \
    || { echo "verify: FAIL (fleet-status --metrics)"; exit 1; }
# Every peer's startup log record registers tq_log_records_total, so both
# peer labels must appear; the routed submit tagged a job on one of them.
grep -q "tq_log_records_total{peer=\"$fleet_a\"}" "$smoke_dir/fleet_metrics.txt" \
    && grep -q "tq_log_records_total{peer=\"$fleet_b\"}" "$smoke_dir/fleet_metrics.txt" \
    || { echo "verify: FAIL (merged exposition lacks per-peer log counters)"; exit 1; }
grep -q 'tq_job_tagged_total{peer="' "$smoke_dir/fleet_metrics.txt" \
    || { echo "verify: FAIL (no peer counted a client-tagged job)"; exit 1; }
./target/release/tq submit --addr "$fleet_a" --shutdown > /dev/null 2>&1 || true
./target/release/tq submit --addr "$fleet_b" --shutdown > /dev/null 2>&1 || true
wait "$fleet_a_pid" \
    || { echo "verify: FAIL (fleet node A unclean exit)"; exit 1; }
wait "$fleet_b_pid" \
    || { echo "verify: FAIL (fleet node B unclean exit)"; exit 1; }

echo "==> fleet_load bench gate (redirect/peek/remote-owned counters nonzero)"
TQ_BENCH_ITERS=1 cargo bench -q --offline -p tq-bench --bench fleet_load \
    || { echo "verify: FAIL (fleet_load gates)"; exit 1; }

echo "==> --instr smoke (filter:* identical to full, reduced profile labelled)"
./target/release/tq tquad --app img --scale tiny > "$smoke_dir/instr.full"
./target/release/tq tquad --app img --scale tiny --instr 'filter:*' > "$smoke_dir/instr.all"
diff "$smoke_dir/instr.full" "$smoke_dir/instr.all" \
    || { echo "verify: FAIL (--instr filter:* diverged from full)"; exit 1; }
./target/release/tq tquad --app img --scale tiny --instr sample:4 \
    | grep -q '# instr sample:4' \
    || { echo "verify: FAIL (sampled profile lacks its instr note)"; exit 1; }
if ./target/release/tq tquad --app img --scale tiny --instr sample:4 \
    --capture "$smoke_dir/nope.trace" > /dev/null 2>&1; then
    echo "verify: FAIL (--instr with --capture must be rejected)"; exit 1
fi

echo "==> docs dead-flag smoke (every --flag the docs name must exist in tq usage)"
tq_usage=$(./target/release/tq 2>&1 || true)
for flag in $(grep -ohE -- '--[a-z][a-z-]+' docs/CLI.md docs/OPERATIONS.md docs/ACCURACY.md \
    | sort -u | grep -vx -e '--flag' -e '--bench'); do
    # --flag is CLI.md's syntax placeholder; --bench is a cargo flag.
    printf '%s' "$tq_usage" | grep -q -- "$flag" \
        || { echo "verify: FAIL (docs name unknown flag $flag)"; exit 1; }
done

echo "==> instr_accuracy bench gate (reduced modes >= 1.3x faster within error bounds)"
bench_guard instr_accuracy 3 \
    || { echo "verify: FAIL (instr_accuracy gates)"; exit 1; }

echo "verify: OK"
