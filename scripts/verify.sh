#!/usr/bin/env sh
# Tier-1 verification gate (see ROADMAP.md). Everything runs offline: the
# workspace has zero external crates, so no registry access is needed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> sharded replay determinism smoke (tquad/quad/gprof, 4 shards vs sequential)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
for tool in tquad quad gprof; do
    ./target/release/tq "$tool" --app img --scale tiny --jobs 1 > "$smoke_dir/$tool.seq"
    ./target/release/tq "$tool" --app img --scale tiny --jobs 4 > "$smoke_dir/$tool.sharded"
    diff "$smoke_dir/$tool.seq" "$smoke_dir/$tool.sharded" \
        || { echo "verify: FAIL ($tool sharded output diverged)"; exit 1; }
done
if ./target/release/tq tquad --app img --scale tiny --interval 0 > /dev/null 2>&1; then
    echo "verify: FAIL (--interval 0 must be rejected)"; exit 1
fi

echo "verify: OK"
