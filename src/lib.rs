//! # tquad-suite — umbrella crate for the tQUAD (ICPP 2010) reproduction
//!
//! This crate carries the runnable `examples/` and cross-crate integration
//! glue; the substance lives in the `crates/` workspace members, re-exported
//! here under short aliases (`tquad_suite::vm`, `tquad_suite::tquad`, …):
//!
//! * [`isa`] — virtual instruction set, encoder/decoder, assembler;
//! * [`vm`] — Pin-like DBI virtual machine with the tool API;
//! * [`kernelc`] — mini kernel compiler (typed AST → ISA);
//! * [`wfs`] / [`imgproc`] — the two case-study applications;
//! * [`trace`] — capture-once/replay-many event traces;
//! * [`gprof`] / [`quad`] / [`tquad`] — the three profiling tools the
//!   paper compares;
//! * [`report`] — tables, charts, DOT, HTML and the hand-rolled JSON codec;
//! * [`profd`] — the concurrent profiling service (capture cache +
//!   parallel replay workers).
//!
//! The project README is included below so its code snippets compile and
//! run as doctests of this crate — the quickstart can never drift from
//! the API.
#![doc = include_str!("../README.md")]

pub use tq_gprof as gprof;
pub use tq_imgproc as imgproc;
pub use tq_isa as isa;
pub use tq_kernelc as kernelc;
pub use tq_profd as profd;
pub use tq_quad as quad;
pub use tq_report as report;
pub use tq_tquad as tquad;
pub use tq_trace as trace;
pub use tq_vm as vm;
pub use tq_wfs as wfs;
